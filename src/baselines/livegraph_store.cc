#include "baselines/livegraph_store.h"

namespace livegraph {

LiveGraphStore::LiveGraphStore(GraphOptions options, PageCacheSim* pagesim)
    : graph_(std::make_unique<Graph>(std::move(options))), pagesim_(pagesim) {}

vertex_t LiveGraphStore::AddNode(std::string_view data) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    auto txn = graph_->BeginTransaction();
    vertex_t id = txn.AddVertex(data);
    if (id == kNullVertex) continue;
    if (txn.Commit() == Status::kOk) return id;
  }
  return kNullVertex;
}

bool LiveGraphStore::GetNode(vertex_t id, std::string* out) {
  auto txn = graph_->BeginReadOnlyTransaction();
  auto props = txn.GetVertex(id);
  if (!props.has_value()) return false;
  if (pagesim_ != nullptr) {
    pagesim_->Touch(props->data(), props->size() + sizeof(VertexHeader),
                    false);
  }
  out->assign(*props);
  return true;
}

bool LiveGraphStore::UpdateNode(vertex_t id, std::string_view data) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    auto txn = graph_->BeginTransaction();
    // LinkBench UPDATE_NODE only touches live nodes: tombstoned or
    // never-written IDs must fail rather than resurrect.
    if (!txn.GetVertex(id).has_value()) return false;
    Status st = txn.PutVertex(id, data);
    if (st == Status::kNotFound) return false;
    if (st != Status::kOk) continue;  // conflict/timeout: retry
    if (txn.Commit() == Status::kOk) {
      if (pagesim_ != nullptr) {
        pagesim_->Touch(data.data(), data.size() + sizeof(VertexHeader), true);
      }
      return true;
    }
  }
  return false;
}

bool LiveGraphStore::DeleteNode(vertex_t id) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    auto txn = graph_->BeginTransaction();
    if (!txn.GetVertex(id).has_value()) return false;
    Status st = txn.DeleteVertex(id);
    if (st == Status::kNotFound) return false;
    if (st != Status::kOk) continue;
    if (txn.Commit() == Status::kOk) return true;
  }
  return false;
}

bool LiveGraphStore::AddLink(vertex_t src, label_t label, vertex_t dst,
                             std::string_view data) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    auto txn = graph_->BeginTransaction();
    // "Upsert" semantics: report whether this was a true insertion. The
    // existence probe is Bloom-filter-fast for true inserts (§4).
    bool existed = txn.GetEdge(src, label, dst).has_value();
    Status st = txn.AddEdge(src, label, dst, data);
    if (st == Status::kNotFound) return false;
    if (st != Status::kOk) continue;
    if (txn.Commit() == Status::kOk) {
      if (pagesim_ != nullptr) {
        pagesim_->Touch(data.data(), data.size() + sizeof(EdgeEntry), true);
      }
      return !existed;
    }
  }
  return false;
}

bool LiveGraphStore::UpdateLink(vertex_t src, label_t label, vertex_t dst,
                                std::string_view data) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    auto txn = graph_->BeginTransaction();
    if (!txn.GetEdge(src, label, dst).has_value()) return false;
    Status st = txn.AddEdge(src, label, dst, data);
    if (st != Status::kOk) continue;
    if (txn.Commit() == Status::kOk) return true;
  }
  return false;
}

bool LiveGraphStore::DeleteLink(vertex_t src, label_t label, vertex_t dst) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    auto txn = graph_->BeginTransaction();
    Status st = txn.DeleteEdge(src, label, dst);
    if (st == Status::kNotFound) return false;
    if (st != Status::kOk) continue;
    if (txn.Commit() == Status::kOk) return true;
  }
  return false;
}

bool LiveGraphStore::GetLink(vertex_t src, label_t label, vertex_t dst,
                             std::string* out) {
  auto txn = graph_->BeginReadOnlyTransaction();
  auto props = txn.GetEdge(src, label, dst);
  if (!props.has_value()) return false;
  if (pagesim_ != nullptr) {
    pagesim_->Touch(props->data(), props->size() + sizeof(EdgeEntry), false);
  }
  out->assign(*props);
  return true;
}

namespace {

size_t ScanWith(const ReadTransaction& txn, PageCacheSim* pagesim,
                vertex_t src, label_t label, const EdgeScanFn& fn) {
  size_t visited = 0;
  auto it = txn.GetEdges(src, label);
  if (pagesim != nullptr && it.Valid()) {
    auto [addr, bytes] = it.ScanSpan();
    pagesim->Touch(addr, bytes, false);
  }
  for (; it.Valid(); it.Next()) {
    visited++;
    if (!fn(it.DstId(), it.Properties())) break;
  }
  return visited;
}

}  // namespace

size_t LiveGraphStore::ScanLinks(vertex_t src, label_t label,
                                 const EdgeScanFn& fn) {
  auto txn = graph_->BeginReadOnlyTransaction();
  return ScanWith(txn, pagesim_, src, label, fn);
}

size_t LiveGraphStore::CountLinks(vertex_t src, label_t label) {
  auto txn = graph_->BeginReadOnlyTransaction();
  return txn.CountEdges(src, label);
}

namespace {

/// MVCC snapshot view: readers never block writers and vice versa (§5).
class LiveGraphViewImpl : public GraphReadView {
 public:
  LiveGraphViewImpl(Graph* graph, PageCacheSim* pagesim)
      : txn_(graph->BeginReadOnlyTransaction()), pagesim_(pagesim) {}

  bool GetNode(vertex_t id, std::string* out) const override {
    auto props = txn_.GetVertex(id);
    if (!props.has_value()) return false;
    out->assign(*props);
    return true;
  }
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) const override {
    auto props = txn_.GetEdge(src, label, dst);
    if (!props.has_value()) return false;
    out->assign(*props);
    return true;
  }
  size_t ScanLinks(vertex_t src, label_t label,
                   const EdgeScanFn& fn) const override {
    return ScanWith(txn_, pagesim_, src, label, fn);
  }
  size_t CountLinks(vertex_t src, label_t label) const override {
    return txn_.CountEdges(src, label);
  }

 private:
  ReadTransaction txn_;
  PageCacheSim* pagesim_;
};

}  // namespace

std::unique_ptr<GraphReadView> LiveGraphStore::OpenReadView() {
  return std::make_unique<LiveGraphViewImpl>(graph_.get(), pagesim_);
}

}  // namespace livegraph
