#include "baselines/livegraph_store.h"

#include <utility>

namespace livegraph {

namespace {

/// Shared by both session kinds: wrap the core iterator; charge the page
/// cache for the strip this scan will walk (one contiguous range — the
/// point of the TEL layout).
template <typename Txn>
EdgeCursor ScanWith(const Txn& txn, PageCacheSim* pagesim, vertex_t src,
                    label_t label, size_t limit) {
  EdgeIterator it = txn.GetEdges(src, label);
  if (pagesim != nullptr && it.Valid()) {
    auto [addr, bytes] = it.ScanSpan();
    pagesim->Touch(addr, bytes, false);
  }
  return EdgeCursor(it, limit);
}

/// MVCC snapshot session: readers never block writers and vice versa (§5).
class LiveGraphReadTxn : public StoreReadTxn {
 public:
  LiveGraphReadTxn(Graph* graph, PageCacheSim* pagesim)
      : txn_(graph->BeginReadOnlyTransaction()), pagesim_(pagesim) {}

  StatusOr<std::string> GetNode(vertex_t id) override {
    StatusOr<std::string_view> props = txn_.GetVertex(id);
    if (!props.ok()) return props.status();
    if (pagesim_ != nullptr) {
      pagesim_->Touch(props->data(), props->size() + sizeof(VertexHeader),
                      false);
    }
    return std::string(*props);
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    StatusOr<std::string_view> props = txn_.GetEdge(src, label, dst);
    if (!props.ok()) return props.status();
    if (pagesim_ != nullptr) {
      pagesim_->Touch(props->data(), props->size() + sizeof(EdgeEntry), false);
    }
    return std::string(*props);
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    // Live TEL cursor: lazy; the bound is a counter on the cursor itself.
    return ScanWith(txn_, pagesim_, src, label, limit);
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    return txn_.CountEdges(src, label);
  }

  vertex_t VertexCount() override { return txn_.VertexCount(); }

 private:
  ReadTransaction txn_;
  PageCacheSim* pagesim_;
};

/// Read-write session under snapshot isolation; maps 1:1 onto the core
/// Transaction (work / persist / apply phases, §5).
class LiveGraphWriteTxn : public StoreTxn {
 public:
  LiveGraphWriteTxn(Graph* graph, PageCacheSim* pagesim)
      : graph_(graph), txn_(graph->BeginTransaction()), pagesim_(pagesim) {}

  ~LiveGraphWriteTxn() override {
    if (txn_.active()) txn_.Abort();
  }

  // --- Reads (read-your-writes) ---

  StatusOr<std::string> GetNode(vertex_t id) override {
    StatusOr<std::string_view> props = txn_.GetVertex(id);
    if (!props.ok()) return props.status();
    return std::string(*props);
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    StatusOr<std::string_view> props = txn_.GetEdge(src, label, dst);
    if (!props.ok()) return props.status();
    return std::string(*props);
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    // Live TEL cursor: lazy; the bound is a counter on the cursor itself.
    return ScanWith(txn_, pagesim_, src, label, limit);
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    return txn_.CountEdges(src, label);
  }

  vertex_t VertexCount() override { return graph_->VertexCount(); }

  // --- Writes ---

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    if (!txn_.active()) return Status::kNotActive;
    vertex_t id = txn_.AddVertex(data);
    if (id == kNullVertex) {
      // Capacity exhaustion leaves the transaction active and usable;
      // a lock timeout (fresh IDs cannot conflict, so effectively never)
      // already aborted it.
      return txn_.active() ? Status::kOutOfRange : Status::kTimeout;
    }
    return id;
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    // LinkBench UPDATE_NODE only touches live nodes: tombstoned or
    // never-written IDs must fail rather than resurrect.
    if (!txn_.GetVertex(id).ok()) return Status::kNotFound;
    Status st = txn_.PutVertex(id, data);
    if (st == Status::kOk && pagesim_ != nullptr) {
      pagesim_->Touch(data.data(), data.size() + sizeof(VertexHeader), true);
    }
    return st;
  }

  Status DeleteNode(vertex_t id) override {
    if (!txn_.GetVertex(id).ok()) return Status::kNotFound;
    return txn_.DeleteVertex(id);
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    // Upsert: report whether this was a true insertion. The existence
    // probe is Bloom-filter-fast for true inserts (§4).
    bool existed = txn_.GetEdge(src, label, dst).ok();
    Status st = txn_.AddEdge(src, label, dst, data);
    if (st != Status::kOk) return st;
    if (pagesim_ != nullptr) {
      pagesim_->Touch(data.data(), data.size() + sizeof(EdgeEntry), true);
    }
    return !existed;
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    if (!txn_.GetEdge(src, label, dst).ok()) return Status::kNotFound;
    return txn_.AddEdge(src, label, dst, data);
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    return txn_.DeleteEdge(src, label, dst);
  }

  // --- Lifecycle ---

  StatusOr<timestamp_t> Commit() override { return txn_.Commit(); }

  void Abort() override {
    if (txn_.active()) txn_.Abort();
  }

  // MVCC futex locks are not thread-affine; only the debug lock-rank
  // ledger migrates (core/transaction.h "Cross-thread hand-off").
  bool SupportsThreadHandoff() const override { return true; }
  void DetachFromThread() override { txn_.DetachFromThread(); }
  void AttachToThread() override { txn_.AttachToThread(); }

 private:
  Graph* graph_;
  Transaction txn_;
  PageCacheSim* pagesim_;
};

}  // namespace

LiveGraphStore::LiveGraphStore(GraphOptions options, PageCacheSim* pagesim)
    : graph_(std::make_unique<Graph>(std::move(options))), pagesim_(pagesim) {}

LiveGraphStore::LiveGraphStore(GraphOptions options,
                               PageCacheSim::Options pagesim_options)
    : graph_(std::make_unique<Graph>(std::move(options))),
      owned_pagesim_(std::make_unique<PageCacheSim>(pagesim_options)),
      pagesim_(owned_pagesim_.get()) {}

LiveGraphStore::LiveGraphStore(std::unique_ptr<Graph> graph)
    : graph_(std::move(graph)), pagesim_(nullptr) {}

LiveGraphStore::LiveGraphStore(std::unique_ptr<Graph> graph,
                               PageCacheSim::Options pagesim_options)
    : graph_(std::move(graph)),
      owned_pagesim_(std::make_unique<PageCacheSim>(pagesim_options)),
      pagesim_(owned_pagesim_.get()) {}

std::unique_ptr<StoreTxn> LiveGraphStore::BeginTxn() {
  return std::make_unique<LiveGraphWriteTxn>(graph_.get(), pagesim_);
}

std::unique_ptr<StoreReadTxn> LiveGraphStore::BeginReadTxn() {
  return std::make_unique<LiveGraphReadTxn>(graph_.get(), pagesim_);
}

}  // namespace livegraph
