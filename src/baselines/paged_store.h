// Simulated paged storage for out-of-core experiments.
//
// The paper's out-of-core configurations (Tables 5/6/8, Figures 5c/5d,
// 6c/6d, 8b) cap DRAM with Linux cgroups so cold accesses become device
// reads on Optane or NAND SSDs. Containers in this reproduction cannot set
// cgroup limits, so stores are instrumented instead: every byte range an
// engine actually walks is "touched" through a shared LRU page cache of
// fixed capacity; a miss charges the device's read latency and evicting a
// dirty page charges its write latency (LiveGraph's random 4 KiB dirty-page
// write-back vs. the LSMT's sequential flushes is exactly the effect §7.2
// discusses). See DESIGN.md §1.3 substitution 3.
//
// In the v2 API the paged configuration is itself an engine: construct
// LiveGraphStore with a PageCacheSim::Options ("PagedLiveGraph") and every
// session's scans/lookups charge simulated device I/O, while the baseline
// stores accept a shared PageCacheSim* as before.
#ifndef LIVEGRAPH_BASELINES_PAGED_STORE_H_
#define LIVEGRAPH_BASELINES_PAGED_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace livegraph {

class PageCacheSim {
 public:
  struct Options {
    /// Cache capacity in 4 KiB pages.
    size_t capacity_pages = 4096;
    /// Device read latency charged per missed page.
    uint32_t read_latency_ns = 10'000;  // Intel Optane P4800X profile
    /// Device write latency charged per dirty eviction.
    uint32_t write_latency_ns = 10'000;
    /// Sequential-write discount: flushing N contiguous dirty pages (an
    /// LSMT run flush) costs latency/sequential_factor per page.
    uint32_t sequential_factor = 8;
    int shards = 64;
  };

  /// Optane SSD profile (default) and NAND SSD profile used by the paper's
  /// dual-device evaluation (Table 2).
  static Options Optane(size_t capacity_pages) {
    Options o;
    o.capacity_pages = capacity_pages;
    o.read_latency_ns = 10'000;
    o.write_latency_ns = 10'000;
    return o;
  }
  static Options Nand(size_t capacity_pages) {
    Options o;
    o.capacity_pages = capacity_pages;
    o.read_latency_ns = 80'000;
    o.write_latency_ns = 30'000;
    return o;
  }

  explicit PageCacheSim(Options options);

  /// Touches [addr, addr+bytes): charges a miss per uncached page; marks
  /// pages dirty on writes. Thread-safe (sharded).
  void Touch(const void* addr, size_t bytes, bool write);

  /// Touch for a bulk sequential write (run flush): pages bypass the cache
  /// and cost the discounted sequential rate.
  void SequentialWrite(size_t bytes);

  struct Stats {
    uint64_t hits;
    uint64_t misses;
    uint64_t dirty_evictions;
    uint64_t simulated_io_ns;
    uint64_t bytes_written;
  };
  Stats GetStats() const;
  void ResetStats();

 private:
  struct Shard {
    std::mutex mu;
    // page id -> {LRU position, dirty}
    struct Entry {
      std::list<uint64_t>::iterator lru_pos;
      bool dirty;
    };
    std::unordered_map<uint64_t, Entry> pages;
    std::list<uint64_t> lru;  // front = most recent
  };

  void TouchPage(uint64_t page, bool write);
  static void SpinFor(uint64_t ns);

  Options options_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> dirty_evictions_{0};
  std::atomic<uint64_t> simulated_io_ns_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_PAGED_STORE_H_
