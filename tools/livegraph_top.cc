// livegraph_top: live terminal dashboard for a running graph server
// (docs/OBSERVABILITY.md).
//
//   livegraph_top [--connect=HOST:PORT] [--interval-ms=N] [--once]
//
// Polls the server's STATS opcode (RemoteStore::Stats) and renders a
// refreshing view: per-opcode throughput and p50/p99 latency, commit and
// WAL activity, epoch/replication lag, open connections and transactions,
// a degraded banner, and the most recent slow-op traces. Rates are deltas
// between consecutive snapshots over the server's own monotonic clock, so
// a paused poller never inflates them. --once prints a single snapshot
// without ANSI clearing (scriptable).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "server/remote_store.h"
#include "util/metrics.h"

namespace {

using livegraph::RemoteStore;
using livegraph::metrics::HistogramSample;
using livegraph::metrics::Snapshot;

struct Flags {
  std::string host = "127.0.0.1";
  uint16_t port = 9271;
  int64_t interval_ms = 2000;
  bool once = false;
};

bool TakeValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--connect=HOST:PORT] [--interval-ms=N] [--once]\n",
               argv0);
  return 2;
}

/// Extracts the value of the single embedded label from a registered
/// metric name, e.g. `livegraph_server_requests_total{op="GET_NODE"}` ->
/// "GET_NODE". Empty when the name carries no label.
std::string_view LabelValue(std::string_view name) {
  size_t open = name.find("=\"");
  if (open == std::string_view::npos) return {};
  size_t close = name.find('"', open + 2);
  if (close == std::string_view::npos) return {};
  return name.substr(open + 2, close - open - 2);
}

double Ms(uint64_t nanos) { return static_cast<double>(nanos) / 1e6; }

/// Rate of a counter between two snapshots, per second of server
/// monotonic time. 0 on the first sample or a server restart (counter or
/// clock went backwards).
double Rate(const Snapshot& now, const Snapshot& prev,
            std::string_view name) {
  if (prev.mono_nanos == 0 || now.mono_nanos <= prev.mono_nanos) return 0;
  uint64_t current = now.counter(name);
  uint64_t before = prev.counter(name);
  if (current < before) return 0;
  double seconds =
      static_cast<double>(now.mono_nanos - prev.mono_nanos) / 1e9;
  return static_cast<double>(current - before) / seconds;
}

void RenderDashboard(const Snapshot& now, const Snapshot& prev,
                     const Flags& flags) {
  if (!flags.once) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear

  char when[32] = "-";
  time_t wall = static_cast<time_t>(now.wall_unix_micros / 1'000'000);
  struct tm parts;
  if (gmtime_r(&wall, &parts) != nullptr) {
    std::strftime(when, sizeof(when), "%Y-%m-%dT%H:%M:%SZ", &parts);
  }
  std::printf("livegraph_top — %s:%u — %s — build %s\n", flags.host.c_str(),
              unsigned{flags.port}, when, now.build_info.c_str());

  if (now.gauge("livegraph_degraded") != 0) {
    std::printf(
        "\x1b[1;41m DEGRADED: engine is read-only (durability failure) "
        "\x1b[0m\n");
  }

  std::printf(
      "conns %lld  open_txns %lld  commits/s %.0f  wal_appends/s %.0f  "
      "wal MB/s %.2f\n",
      static_cast<long long>(now.gauge("livegraph_server_connections")),
      static_cast<long long>(now.gauge("livegraph_server_open_txns")),
      Rate(now, prev, "livegraph_commit_txns_total"),
      Rate(now, prev, "livegraph_wal_appends_total"),
      Rate(now, prev, "livegraph_wal_bytes_total") / 1e6);

  std::printf(
      "epoch issued %lld visible %lld lag %lld  read_pins %lld  "
      "oldest_pin_age %lld\n",
      static_cast<long long>(now.gauge("livegraph_epoch_issued")),
      static_cast<long long>(now.gauge("livegraph_epoch_visible")),
      static_cast<long long>(now.gauge("livegraph_epoch_lag")),
      static_cast<long long>(now.gauge("livegraph_epoch_read_pins")),
      static_cast<long long>(now.gauge("livegraph_epoch_oldest_pin_age")));

  long long subscribers = now.gauge("livegraph_replication_subscribers");
  if (subscribers > 0) {
    std::printf(
        "replication: subscribers %lld  lag_epochs %lld  buffered MB %.2f\n",
        subscribers,
        static_cast<long long>(now.gauge("livegraph_replication_lag_epochs")),
        static_cast<double>(
            now.gauge("livegraph_replication_buffered_bytes")) /
            1e6);
  }

  // Event-loop frontend (docs/SERVER.md "Event loop"); absent under the
  // legacy blocking transport. Loop count and connection total come from
  // the per-reactor connection gauges.
  int reactor_loops = 0;
  long long reactor_conns = 0;
  constexpr std::string_view kReactorConnsPrefix =
      "livegraph_server_reactor_connections{";
  for (const auto& [name, value] : now.gauges) {
    if (std::string_view(name).substr(0, kReactorConnsPrefix.size()) ==
        kReactorConnsPrefix) {
      ++reactor_loops;
      reactor_conns += value;
    }
  }
  if (reactor_loops > 0) {
    const HistogramSample* frames =
        now.histogram("livegraph_server_frames_per_wakeup");
    const HistogramSample* pending =
        now.histogram("livegraph_server_pending_write_bytes");
    std::printf(
        "reactors %d  conns %lld  wakeups/s %.0f  frames/wakeup p50 %llu  "
        "pending_write p99 %.1f KB  idle_closed %llu\n",
        reactor_loops, reactor_conns,
        Rate(now, prev, "livegraph_server_reactor_wakeups_total"),
        static_cast<unsigned long long>(frames != nullptr ? frames->p50 : 0),
        static_cast<double>(pending != nullptr ? pending->p99 : 0) / 1e3,
        static_cast<unsigned long long>(
            now.counter("livegraph_server_idle_closed_total")));
  }

  // Per-opcode table, skipping opcodes that have never been seen.
  std::printf("\n%-18s %10s %10s %10s %10s\n", "op", "req/s", "total",
              "p50 ms", "p99 ms");
  constexpr std::string_view kRequestsPrefix =
      "livegraph_server_requests_total{";
  for (const auto& [name, total] : now.counters) {
    if (total == 0 ||
        std::string_view(name).substr(0, kRequestsPrefix.size()) !=
            kRequestsPrefix) {
      continue;
    }
    std::string op(LabelValue(name));
    std::string latency_name =
        "livegraph_server_op_latency{op=\"" + op + "\"}";
    const HistogramSample* latency = now.histogram(latency_name);
    std::printf("%-18s %10.0f %10llu %10.3f %10.3f\n", op.c_str(),
                Rate(now, prev, name),
                static_cast<unsigned long long>(total),
                latency != nullptr ? Ms(latency->p50) : 0.0,
                latency != nullptr ? Ms(latency->p99) : 0.0);
  }

  if (!now.slow_ops.empty()) {
    std::printf("\nslow ops (%llu total):\n",
                static_cast<unsigned long long>(now.slow_ops_total));
    size_t shown = 0;
    for (size_t i = now.slow_ops.size(); i > 0 && shown < 5; --i, ++shown) {
      const livegraph::metrics::SlowOp& op = now.slow_ops[i - 1];
      std::printf("  %-12s %8.1f ms", op.name.c_str(), Ms(op.total_nanos));
      if (op.shard >= 0) std::printf("  shard %d", op.shard);
      if (op.epoch > 0) {
        std::printf("  epoch %lld", static_cast<long long>(op.epoch));
      }
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (TakeValue(argv[i], "--connect", &value)) {
      size_t colon = value.rfind(':');
      int port = colon == std::string::npos
                     ? 0
                     : std::atoi(value.c_str() + colon + 1);
      if (colon == std::string::npos || colon == 0 || port <= 0 ||
          port > 65535) {
        std::fprintf(stderr, "--connect wants HOST:PORT\n");
        return Usage(argv[0]);
      }
      flags.host = value.substr(0, colon);
      flags.port = static_cast<uint16_t>(port);
    } else if (TakeValue(argv[i], "--interval-ms", &value)) {
      flags.interval_ms = std::atoll(value.c_str());
      if (flags.interval_ms < 100) flags.interval_ms = 100;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      flags.once = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::unique_ptr<RemoteStore> store =
      RemoteStore::Connect(flags.host, flags.port);
  if (store == nullptr) {
    std::fprintf(stderr, "livegraph_top: cannot connect to %s:%u\n",
                 flags.host.c_str(), unsigned{flags.port});
    return 1;
  }

  Snapshot prev;
  while (true) {
    Snapshot now;
    if (!store->Stats(&now)) {
      // One reconnect attempt per poll: a server restart should resume
      // the dashboard, not kill it.
      store = RemoteStore::Connect(flags.host, flags.port);
      if (store == nullptr || !store->Stats(&now)) {
        std::fprintf(stderr, "livegraph_top: lost %s:%u\n",
                     flags.host.c_str(), unsigned{flags.port});
        return 1;
      }
    }
    RenderDashboard(now, prev, flags);
    if (flags.once) return 0;
    prev = std::move(now);
    struct timespec tick = {
        static_cast<time_t>(flags.interval_ms / 1000),
        static_cast<long>((flags.interval_ms % 1000) * 1'000'000)};
    nanosleep(&tick, nullptr);
  }
}
