#!/usr/bin/env bash
# Zero-warning clang-tidy pass over src/ (the CI `clang-tidy` job;
# docs/TESTING.md).
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Requires a configured build with CMAKE_EXPORT_COMPILE_COMMANDS (the
# default — see CMakeLists.txt), so every src/ translation unit has an
# entry in <build-dir>/compile_commands.json. Exits non-zero on the first
# file with warnings; .clang-tidy promotes all warnings to errors.
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

TIDY="$(command -v clang-tidy || true)"
if [ -z "${TIDY}" ]; then
  # Local convenience only — CI installs clang-tidy and will not take this
  # branch, so the gate cannot be skipped where it matters.
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (CI enforces this gate)" >&2
  exit 0
fi

if [ ! -f "${ROOT}/${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_clang_tidy: ${BUILD_DIR}/compile_commands.json missing." >&2
  echo "  configure first:  cmake -B ${BUILD_DIR} -S ${ROOT}" >&2
  exit 2
fi

cd "${ROOT}"
FILES="$(find src -name '*.cc' | sort)"
STATUS=0
for f in ${FILES}; do
  echo "== clang-tidy ${f}"
  if ! "${TIDY}" -p "${BUILD_DIR}" --quiet "${f}"; then
    STATUS=1
  fi
done

if [ "${STATUS}" -ne 0 ]; then
  echo "run_clang_tidy: FAILED — warnings above (WarningsAsErrors: '*')" >&2
else
  echo "run_clang_tidy: clean over $(echo "${FILES}" | wc -l) files"
fi
exit "${STATUS}"
