// Social-network feed service: the workload class the paper's intro
// motivates (Facebook-style posts/friendships, TAO-like read-mostly
// access). Demonstrates:
//   * concurrent writers (friend requests, posts) with automatic retry,
//   * time-ordered feeds straight from the TEL's newest-first scans,
//   * durable operation with WAL + recovery.
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"

namespace {

constexpr livegraph::label_t kFriend = 0;
constexpr livegraph::label_t kPosted = 1;

/// Retries a write transaction until it commits (conflicts are expected
/// under concurrency; snapshot isolation makes retry safe).
template <typename Fn>
bool WithRetry(livegraph::Graph& graph, const Fn& fn) {
  using namespace livegraph;
  for (int attempt = 0; attempt < 64; ++attempt) {
    Transaction txn = graph.BeginTransaction();
    if (!fn(txn)) continue;
    if (txn.Commit() == Status::kOk) return true;
  }
  return false;
}

}  // namespace

int main() {
  using namespace livegraph;
  std::string dir = "/tmp/livegraph_social_example";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 20;
  options.wal_path = dir + "/wal.log";
  options.fsync_wal = false;  // demo speed; enable for real durability

  vertex_t users[4];
  {
    Graph graph(options);
    // Register users.
    {
      Transaction txn = graph.BeginTransaction();
      const char* names[] = {"ada", "grace", "edsger", "barbara"};
      for (int i = 0; i < 4; ++i) users[i] = txn.AddVertex(names[i]);
      if (txn.Commit() != Status::kOk) return 1;
    }
    // Concurrent activity: friendships and posts from several threads.
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        for (int i = 0; i < 25; ++i) {
          vertex_t me = users[w];
          vertex_t other = users[(w + i) % 4];
          if (other != me) {
            WithRetry(graph, [&](Transaction& txn) {
              // Mutual friendship edge with a timestamp payload.
              std::string when = "t=" + std::to_string(w * 100 + i);
              return txn.AddEdge(me, kFriend, other, when) == Status::kOk &&
                     txn.AddEdge(other, kFriend, me, when) == Status::kOk;
            });
          }
          WithRetry(graph, [&](Transaction& txn) {
            vertex_t post = txn.AddVertex(
                "post by user " + std::to_string(w) + " #" +
                std::to_string(i));
            return txn.AddEdge(me, kPosted, post) == Status::kOk;
          });
        }
      });
    }
    for (auto& t : workers) t.join();

    // Build ada's feed: newest 5 posts of each friend, zero sorting work —
    // the TEL already yields newest-first.
    ReadTransaction snapshot = graph.BeginReadOnlyTransaction();
    std::printf("ada's friends and their latest posts:\n");
    for (EdgeIterator f = snapshot.GetEdges(users[0], kFriend); f.Valid();
         f.Next()) {
      std::printf("  %s:\n",
                  std::string(*snapshot.GetVertex(f.DstId())).c_str());
      int shown = 0;
      for (EdgeIterator p = snapshot.GetEdges(f.DstId(), kPosted);
           p.Valid() && shown < 5; p.Next(), ++shown) {
        std::printf("    - %s\n",
                    std::string(*snapshot.GetVertex(p.DstId())).c_str());
      }
    }
    std::printf("total posts by ada: %zu\n",
                snapshot.CountEdges(users[0], kPosted));
  }  // graph closed ("crash")

  // Recover from the WAL and verify the feed survived.
  auto recovered = Graph::Recover(options, "");
  ReadTransaction snapshot = recovered->BeginReadOnlyTransaction();
  std::printf("after recovery: ada still has %zu posts, %zu friends\n",
              snapshot.CountEdges(users[0], kPosted),
              snapshot.CountEdges(users[0], kFriend));
  std::filesystem::remove_all(dir);
  std::printf("social_network OK\n");
  return 0;
}
