// Real-time fraud detection — one of the paper's motivating applications
// (§1: "financial institutions establish if groups of people connected
// through common addresses, telephone numbers, or frequent contacts are
// issuing fraudulent transactions").
//
// Accounts share identifiers (phone/address); a transaction stream keeps
// committing while an analyst repeatedly asks: "are these two accounts
// connected through shared identifiers within k hops?" — answered on a
// consistent snapshot with the SNB shortest-path primitive, without ever
// blocking the ingest path.
#include <cstdio>
#include <thread>

#include "baselines/livegraph_store.h"
#include "snb/queries.h"
#include "util/random.h"

int main() {
  using namespace livegraph;
  constexpr label_t kShares = snb::kKnows;  // reuse the mutual-edge label

  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 20;
  LiveGraphStore store(options);

  // 200 accounts, 60 identifiers (phones/addresses).
  std::vector<vertex_t> accounts, identifiers;
  for (int i = 0; i < 200; ++i) {
    accounts.push_back(store.AddNode("account-" + std::to_string(i)));
  }
  for (int i = 0; i < 60; ++i) {
    identifiers.push_back(store.AddNode("id-" + std::to_string(i)));
  }

  // Warm-up: seed some shared identifiers so early checks have signal.
  {
    Xorshift rng(3);
    for (int i = 0; i < 600; ++i) {
      vertex_t account = accounts[rng.NextBounded(accounts.size())];
      vertex_t id = identifiers[rng.NextBounded(identifiers.size())];
      store.AddLink(account, kShares, id, {});
      store.AddLink(id, kShares, account, {});
    }
  }

  // Ingest thread: accounts keep registering identifiers (mutual edges).
  std::atomic<bool> stop{false};
  std::thread ingest([&] {
    Xorshift rng(7);
    while (!stop.load()) {
      vertex_t account = accounts[rng.NextBounded(accounts.size())];
      vertex_t id = identifiers[rng.NextBounded(identifiers.size())];
      store.AddLink(account, kShares, id, {});
      store.AddLink(id, kShares, account, {});
    }
  });

  // Analyst: repeated ring checks on fresh snapshots.
  Xorshift rng(42);
  int connected = 0, checked = 0;
  for (int round = 0; round < 50; ++round) {
    auto view = store.BeginReadTxn();  // consistent MVCC snapshot session
    vertex_t a = accounts[rng.NextBounded(accounts.size())];
    vertex_t b = accounts[rng.NextBounded(accounts.size())];
    if (a == b) continue;
    int hops = snb::ComplexShortestPath(*view, a, b);
    checked++;
    if (hops >= 0 && hops <= 4) {
      connected++;
      if (connected <= 5) {
        std::printf("ALERT: accounts %lld and %lld linked within %d hops\n",
                    static_cast<long long>(a), static_cast<long long>(b),
                    hops);
      }
    }
  }
  stop.store(true);
  ingest.join();
  std::printf("checked %d pairs, %d connected through shared identifiers\n",
              checked, connected);
  std::printf("fraud_detection OK\n");
  return 0;
}
