// Remote quickstart: the quickstart flow, but over the network. Starts a
// GraphServer in-process on an ephemeral localhost port (exactly what
// `livegraph_server --engine=LiveGraph` does in its own process), then
// talks to it through RemoteStore — the same Store interface as the
// embedded engines, so the rest of the code is indistinguishable from
// examples/quickstart.cpp. See docs/SERVER.md for the wire protocol.
#include <cstdio>
#include <memory>

#include "baselines/livegraph_store.h"
#include "server/graph_server.h"
#include "server/remote_store.h"

using namespace livegraph;

int main() {
  // --- Server side (normally its own process: livegraph_server) ---
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  LiveGraphStore engine(options);
  GraphServer server(engine, {});
  if (!server.Start()) {
    std::fprintf(stderr, "failed to start server\n");
    return 1;
  }
  std::printf("serving %s on 127.0.0.1:%u\n", engine.Name().c_str(),
              unsigned{server.port()});

  // --- Client side ---
  std::unique_ptr<RemoteStore> store =
      RemoteStore::Connect("127.0.0.1", server.port());
  if (store == nullptr) {
    std::fprintf(stderr, "failed to connect\n");
    return 1;
  }
  std::printf("connected to %s (snapshot_reads=%d)\n",
              store->Name().c_str(), int{store->Traits().snapshot_reads});

  // One multi-object transaction: a tiny follow graph.
  constexpr label_t kFollows = 0;
  auto txn = store->BeginTxn();
  vertex_t ada = *txn->AddNode("ada");
  vertex_t bob = *txn->AddNode("bob");
  vertex_t cyn = *txn->AddNode("cyn");
  txn->AddLink(ada, kFollows, bob, "2024-01-01");
  txn->AddLink(ada, kFollows, cyn, "2024-03-05");
  txn->AddLink(bob, kFollows, cyn, "2024-06-17");
  StatusOr<timestamp_t> epoch = txn->Commit();
  if (!epoch.ok()) {
    std::fprintf(stderr, "commit failed: %s\n", StatusName(epoch.status()));
    return 1;
  }
  std::printf("committed at epoch %lld\n",
              static_cast<long long>(*epoch));

  // A consistent read session with a streamed adjacency scan. The server
  // sends edge batches; the cursor pulls them as the loop advances.
  auto read = store->BeginReadTxn();
  std::printf("ada follows %zu accounts (newest first):\n",
              read->CountLinks(ada, kFollows));
  for (EdgeCursor c = read->ScanLinks(ada, kFollows); c.Valid(); c.Next()) {
    StatusOr<std::string> who = read->GetNode(c.dst());
    std::printf("  -> %s (since %.*s)\n",
                who.ok() ? who->c_str() : "?",
                int(c.properties().size()), c.properties().data());
  }
  read.reset();

  store.reset();
  server.Stop();
  std::printf("done\n");
  return 0;
}
