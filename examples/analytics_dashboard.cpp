// Real-time analytics dashboard (§7.4): PageRank and connected components
// computed in-situ on the live graph's latest snapshot while updates keep
// streaming in — no ETL, no staleness window beyond the snapshot epoch.
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "analytics/conncomp.h"
#include "analytics/pagerank.h"
#include "core/graph.h"
#include "core/transaction.h"
#include "util/random.h"
#include "workload/kronecker.h"

int main() {
  using namespace livegraph;
  GraphOptions options;
  options.region_reserve = size_t{1} << 31;
  options.max_vertices = 1 << 20;
  Graph graph(options);

  // Seed with a Kronecker graph (the paper's micro-benchmark generator).
  KroneckerOptions kron;
  kron.scale = 13;  // 8K vertices, 32K edges
  {
    Transaction txn = graph.BeginTransaction();
    for (vertex_t v = 0; v < (vertex_t{1} << kron.scale); ++v) txn.AddVertex();
    for (auto& [src, dst] : GenerateKronecker(kron)) txn.AddEdge(src, 0, dst);
    if (txn.Commit() != Status::kOk) return 1;
  }

  // Updates keep flowing while the dashboard refreshes.
  std::atomic<bool> stop{false};
  std::atomic<int> updates{0};
  std::thread writer([&] {
    Xorshift rng(5);
    while (!stop.load()) {
      Transaction txn = graph.BeginTransaction();
      auto src = static_cast<vertex_t>(rng.NextBounded(graph.VertexCount()));
      auto dst = static_cast<vertex_t>(rng.NextBounded(graph.VertexCount()));
      if (txn.AddEdge(src, 0, dst) == Status::kOk &&
          txn.Commit() == Status::kOk) {
        updates++;
      }
    }
  });

  PageRankOptions pr;
  pr.threads = 8;
  for (int refresh = 0; refresh < 3; ++refresh) {
    ReadTransaction snapshot = graph.BeginReadOnlyTransaction();
    auto ranks = PageRankOnSnapshot(snapshot, 0, pr);
    auto comps = ConnCompOnSnapshot(snapshot, 0, pr.threads);
    // Top influencer + component count at this instant.
    size_t top = 0;
    for (size_t v = 1; v < ranks.size(); ++v) {
      if (ranks[v] > ranks[top]) top = v;
    }
    std::set<vertex_t> unique(comps.begin(), comps.end());
    std::printf(
        "refresh %d @epoch %lld: top vertex %zu (rank %.6f), "
        "%zu components, %d updates ingested so far\n",
        refresh, static_cast<long long>(snapshot.read_epoch()), top,
        ranks[top], unique.size(), updates.load());
  }
  stop.store(true);
  writer.join();
  std::printf("analytics_dashboard OK (total updates: %d)\n", updates.load());
  return 0;
}
