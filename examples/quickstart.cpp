// Quickstart: the LiveGraph public API in one file.
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/graph.h"
#include "core/transaction.h"

int main() {
  using namespace livegraph;

  // 1. Open an in-memory graph (set storage_path/wal_path for durability).
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 20;
  Graph graph(options);

  constexpr label_t kFollows = 0;
  constexpr label_t kLikes = 1;

  // 2. Write transactions: everything becomes visible atomically at commit.
  vertex_t alice, bob, carol;
  {
    Transaction txn = graph.BeginTransaction();
    alice = txn.AddVertex("Alice");
    bob = txn.AddVertex("Bob");
    carol = txn.AddVertex("Carol");
    txn.AddEdge(alice, kFollows, bob, "since=2020");
    txn.AddEdge(alice, kFollows, carol, "since=2021");
    txn.AddEdge(bob, kLikes, carol);
    if (txn.Commit() != Status::kOk) return 1;
  }

  // 3. Read-only snapshot transactions never block, and scans are purely
  //    sequential over the Transactional Edge Log — newest edges first.
  {
    ReadTransaction snapshot = graph.BeginReadOnlyTransaction();
    std::printf("%s follows:\n",
                std::string(*snapshot.GetVertex(alice)).c_str());
    for (EdgeIterator it = snapshot.GetEdges(alice, kFollows); it.Valid();
         it.Next()) {
      std::printf("  -> %s (%s)\n",
                  std::string(*snapshot.GetVertex(it.DstId())).c_str(),
                  std::string(it.Properties()).c_str());
    }
  }

  // 4. Snapshot isolation: a concurrent snapshot is immune to later writes.
  ReadTransaction before = graph.BeginReadOnlyTransaction();
  {
    Transaction txn = graph.BeginTransaction();
    txn.DeleteEdge(alice, kFollows, bob);
    txn.PutVertex(bob, "Bob v2");
    if (txn.Commit() != Status::kOk) return 1;
  }
  std::printf("snapshot before delete still sees %zu follow edges\n",
              before.CountEdges(alice, kFollows));
  ReadTransaction after = graph.BeginReadOnlyTransaction();
  std::printf("fresh snapshot sees %zu follow edge(s); bob is now '%s'\n",
              after.CountEdges(alice, kFollows),
              std::string(*after.GetVertex(bob)).c_str());

  // 5. Conflicts abort cleanly (first committer wins).
  {
    Transaction t1 = graph.BeginTransaction();
    Transaction t2 = graph.BeginTransaction();
    t1.AddEdge(carol, kFollows, alice);
    if (t1.Commit() != Status::kOk) return 1;
    Status st = t2.AddEdge(carol, kFollows, bob);
    std::printf("concurrent writer got: %s (retry with a fresh snapshot)\n",
                StatusName(st));
  }
  std::printf("quickstart OK\n");
  return 0;
}
