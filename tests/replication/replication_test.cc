// Replication subsystem (docs/REPLICATION.md): the primary-side log and
// follower frontier as units, then the full topology end to end over real
// loopback TCP — catch-up mid-workload, durable resubscribe after a
// follower death, read-your-epoch failover, and the follower's write
// rejection. Convergence is always asserted on rows (dst + properties +
// order), never on timestamps: the two nodes run separate epoch spaces by
// design.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/store.h"
#include "replication/epoch_frontier.h"
#include "replication/replica.h"
#include "replication/replication_hub.h"
#include "replication/replication_log.h"
#include "server/graph_server.h"
#include "server/remote_store.h"
#include "shard/sharded_store.h"

namespace livegraph {
namespace {

// --- ReplicationLog ----------------------------------------------------

TEST(ReplicationLogTest, FetchFiltersCatchUpEpochsSilently) {
  ReplicationLog log;
  for (timestamp_t e = 1; e <= 5; ++e) {
    log.Append(/*shard=*/0, e, /*participants=*/1, "p" + std::to_string(e));
  }
  timestamp_t trim = -1;
  uint64_t cursor = log.OpenCursor(&trim);
  EXPECT_EQ(trim, 0) << "nothing evicted yet";

  std::vector<ReplicationLog::Entry> out;
  bool more = true;
  // Epochs <= 2 reached the subscriber through its catch-up phase; the
  // live drain must consume them without delivering them.
  ASSERT_EQ(log.Fetch(cursor, /*filter_epoch=*/2, 1 << 20, /*timeout_ms=*/0,
                      &out, &more),
            ReplicationLog::FetchStatus::kOk);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].epoch, 3);
  EXPECT_EQ(out[2].epoch, 5);
  EXPECT_EQ(out[2].payload, "p5");
  EXPECT_FALSE(more);

  // Drained: nothing new within a zero deadline is a heartbeat tick.
  EXPECT_EQ(log.Fetch(cursor, 2, 1 << 20, 0, &out, &more),
            ReplicationLog::FetchStatus::kTimeout);
  log.CloseCursor(cursor);
}

TEST(ReplicationLogTest, MoreFlagHoldsFrontierUntilDrained) {
  ReplicationLog log;
  const std::string payload(100, 'x');
  for (timestamp_t e = 1; e <= 3; ++e) log.Append(0, e, 1, payload);
  timestamp_t trim = 0;
  uint64_t cursor = log.OpenCursor(&trim);

  std::vector<ReplicationLog::Entry> out;
  bool more = false;
  // max_bytes below one payload: progress guarantee still delivers the
  // first entry, and `more` warns the push loop not to advance its
  // shipped frontier yet.
  ASSERT_EQ(log.Fetch(cursor, 0, /*max_bytes=*/1, 0, &out, &more),
            ReplicationLog::FetchStatus::kOk);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].epoch, 1);
  EXPECT_TRUE(more);

  size_t total = out.size();
  while (more) {
    ASSERT_EQ(log.Fetch(cursor, 0, 1, 0, &out, &more),
              ReplicationLog::FetchStatus::kOk);
    total += out.size();
  }
  EXPECT_EQ(total, 3u);
  log.CloseCursor(cursor);
}

TEST(ReplicationLogTest, HardCapEvictionLapsSlowCursor) {
  ReplicationLog::Options options;
  options.soft_bytes = 64;
  options.hard_bytes = 128;
  ReplicationLog log(options);

  timestamp_t trim = 0;
  uint64_t cursor = log.OpenCursor(&trim);
  const std::string payload(64, 'x');
  for (timestamp_t e = 1; e <= 10; ++e) log.Append(0, e, 1, payload);

  // 640 bytes through a 128-byte hard cap: the open cursor could not hold
  // eviction back, so it must report the lap instead of silently skipping.
  EXPECT_LE(log.buffered_bytes(), options.hard_bytes);
  EXPECT_GE(log.trim_epoch(), 8);
  std::vector<ReplicationLog::Entry> out;
  bool more = false;
  EXPECT_EQ(log.Fetch(cursor, 0, 1 << 20, 0, &out, &more),
            ReplicationLog::FetchStatus::kLapped);
  log.CloseCursor(cursor);

  // A fresh subscription registered now sees the trim bound it must
  // catch up to by other means.
  uint64_t cursor2 = log.OpenCursor(&trim);
  EXPECT_EQ(trim, log.trim_epoch());
  EXPECT_EQ(log.Fetch(cursor2, trim, 1 << 20, 0, &out, &more),
            ReplicationLog::FetchStatus::kOk);
  for (const ReplicationLog::Entry& entry : out) EXPECT_GT(entry.epoch, trim);
  log.CloseCursor(cursor2);
}

TEST(ReplicationLogTest, CloseWakesBlockedFetch) {
  ReplicationLog log;
  timestamp_t trim = 0;
  uint64_t cursor = log.OpenCursor(&trim);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Close();
  });
  std::vector<ReplicationLog::Entry> out;
  bool more = false;
  EXPECT_EQ(log.Fetch(cursor, 0, 1 << 20, /*timeout_ms=*/5000, &out, &more),
            ReplicationLog::FetchStatus::kClosed);
  closer.join();
}

// --- ReplicaFrontier ---------------------------------------------------

TEST(ReplicaFrontierTest, AdvanceIsMonotoneAndWakesWaiters) {
  ReplicaFrontier frontier;
  EXPECT_EQ(frontier.Frontier(), 0);
  frontier.Advance(5);
  frontier.Advance(3);  // stale advances are ignored
  EXPECT_EQ(frontier.Frontier(), 5);

  EXPECT_TRUE(frontier.WaitCovered(5, 0)) << "already covered: no wait";
  EXPECT_FALSE(frontier.WaitCovered(6, 30))
      << "an uncovered (possibly garbage) epoch must time out, not hang";

  std::thread advancer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    frontier.Advance(10);
  });
  EXPECT_TRUE(frontier.WaitCovered(10, 5000));
  advancer.join();
}

// --- End to end over loopback TCP --------------------------------------

std::string TempDir(const char* tag) {
  static int counter = 0;
  std::string dir = std::string("/tmp/lg_replication_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ShardOptions PrimaryOptions(const std::string& dir) {
  ShardOptions options;
  options.shards = 2;
  options.dir = dir;
  options.graph.region_reserve = size_t{1} << 30;
  options.graph.max_vertices = 1 << 16;
  options.graph.fsync_wal = false;
  return options;
}

// One primary node: recovered durable store, hub attached, server up.
struct Primary {
  explicit Primary(const std::string& dir) {
    store = ShardedStore::Recover(PrimaryOptions(dir));
    if (store == nullptr) return;
    if (!hub.Attach(*store)) return;
    frontier = std::make_unique<DomainFrontier>(hub.domain());
    GraphServer::Options options;
    options.replication = &hub;
    options.frontier = frontier.get();
    server = std::make_unique<GraphServer>(*store, options);
    ok = server->Start();
  }
  ~Primary() {
    if (server != nullptr) server->Stop();
  }

  std::unique_ptr<ShardedStore> store;
  ReplicationHub hub;
  std::unique_ptr<DomainFrontier> frontier;
  std::unique_ptr<GraphServer> server;
  bool ok = false;
};

// One committed write txn; returns the primary commit epoch.
timestamp_t WriteOne(Store& store, const std::string& node_props,
                     vertex_t link_src, label_t label,
                     const std::string& link_props) {
  auto txn = store.BeginTxn();
  StatusOr<vertex_t> added = txn->AddNode(node_props);
  EXPECT_TRUE(added.ok());
  if (added.ok()) {
    StatusOr<bool> linked = txn->AddLink(link_src, label, *added, link_props);
    EXPECT_TRUE(linked.ok());
  }
  StatusOr<timestamp_t> epoch = txn->Commit();
  EXPECT_TRUE(epoch.ok());
  return epoch.ok() ? *epoch : 0;
}

std::vector<std::pair<vertex_t, std::string>> Links(StoreReadTxn& read,
                                                    vertex_t src,
                                                    label_t label) {
  std::vector<std::pair<vertex_t, std::string>> out;
  for (EdgeCursor c = read.ScanLinks(src, label); c.Valid(); c.Next()) {
    out.emplace_back(c.dst(), std::string(c.properties()));
  }
  return out;
}

// Rows must match bit for bit: same vertices, same properties, same
// adjacency contents in the same order. Timestamps are deliberately never
// compared — the epoch spaces diverge.
void ExpectConverged(Store& primary, Store& follower) {
  auto p = primary.BeginReadTxn();
  auto f = follower.BeginReadTxn();
  ASSERT_EQ(f->SessionStatus(), Status::kOk);
  ASSERT_EQ(p->VertexCount(), f->VertexCount());
  for (vertex_t v = 0; v < p->VertexCount(); ++v) {
    StatusOr<std::string> pn = p->GetNode(v);
    StatusOr<std::string> fn = f->GetNode(v);
    ASSERT_EQ(pn.status(), fn.status()) << "vertex " << v;
    if (pn.ok()) EXPECT_EQ(*pn, *fn) << "vertex " << v;
    for (label_t label = 0; label < 2; ++label) {
      EXPECT_EQ(Links(*p, v, label), Links(*f, v, label))
          << "adjacency of " << v << "/" << label;
    }
  }
}

TEST(ReplicationEndToEnd, FollowerCatchesUpMidWorkloadAndConverges) {
  std::string root = TempDir("catchup");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);

  // Phase 1: a workload already durable before the follower exists — its
  // subscription has to bootstrap all of this.
  std::vector<vertex_t> nodes;
  for (int i = 0; i < 24; ++i) {
    nodes.push_back(primary.store->AddNode("n" + std::to_string(i)));
  }
  for (int i = 0; i < 24; ++i) {
    primary.store->AddLink(nodes[static_cast<size_t>(i % 6)], 0,
                           nodes[static_cast<size_t>(i)],
                           "e" + std::to_string(i));
  }

  // Follower subscribes mid-workload (in-memory: fresh snapshot
  // bootstrap) ...
  Replica::Options replica_options;
  replica_options.primary_port = primary.server->port();
  replica_options.graph = PrimaryOptions("").graph;
  Replica replica(replica_options);
  replica.Start();
  ASSERT_TRUE(replica.WaitReady(10000));

  // ... while phase 2 keeps committing against the live stream.
  timestamp_t last = 0;
  for (int i = 0; i < 48; ++i) {
    last = WriteOne(*primary.store, "m" + std::to_string(i),
                    nodes[static_cast<size_t>(i) % nodes.size()], 1,
                    "late" + std::to_string(i));
  }
  ASSERT_GT(last, 0);
  ASSERT_TRUE(replica.frontier().WaitCovered(last, 10000))
      << "follower frontier never covered the final primary commit";

  ExpectConverged(*primary.store, replica.store());
  replica.Stop();
  std::filesystem::remove_all(root);
}

TEST(ReplicationEndToEnd, RestartedFollowerResubscribesFromDurableState) {
  std::string root = TempDir("restart");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);

  timestamp_t last = 0;
  vertex_t hub_vertex = primary.store->AddNode("hub");
  for (int i = 0; i < 20; ++i) {
    last = WriteOne(*primary.store, "a" + std::to_string(i), hub_vertex, 0,
                    "e" + std::to_string(i));
  }

  Replica::Options replica_options;
  replica_options.primary_port = primary.server->port();
  replica_options.dir = root + "/replica";
  replica_options.graph = PrimaryOptions("").graph;
  // Tight cadence so the durable frontier trails the stream closely.
  replica_options.checkpoint_every_epochs = 4;
  {
    Replica replica(replica_options);
    replica.Start();
    ASSERT_TRUE(replica.WaitReady(10000));
    ASSERT_TRUE(replica.frontier().WaitCovered(last, 10000));
    replica.Stop();  // dies mid-workload; REPLICA_STATE stays behind
  }
  ASSERT_TRUE(std::filesystem::exists(root + "/replica/REPLICA_STATE"));

  // The primary keeps committing while the follower is down.
  for (int i = 0; i < 20; ++i) {
    last = WriteOne(*primary.store, "b" + std::to_string(i), hub_vertex, 1,
                    "f" + std::to_string(i));
  }

  Replica replica(replica_options);
  replica.Start();
  // Durable resume: the frontier is restored from REPLICA_STATE before
  // the subscription thread even connects.
  EXPECT_GT(replica.frontier().Frontier(), 0)
      << "restart must resume from the persisted frontier, not epoch 0";
  ASSERT_TRUE(replica.WaitReady(10000));
  ASSERT_TRUE(replica.frontier().WaitCovered(last, 10000));
  ExpectConverged(*primary.store, replica.store());
  replica.Stop();
  std::filesystem::remove_all(root);
}

TEST(ReplicationEndToEnd, ReadSessionsFailOverWhenFollowerDies) {
  std::string root = TempDir("failover");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);

  Replica::Options replica_options;
  replica_options.primary_port = primary.server->port();
  replica_options.graph = PrimaryOptions("").graph;
  auto replica = std::make_unique<Replica>(replica_options);
  replica->Start();
  ASSERT_TRUE(replica->WaitReady(10000));

  GraphServer::Options follower_options;
  follower_options.frontier = &replica->frontier();
  auto follower_server =
      std::make_unique<GraphServer>(replica->store(), follower_options);
  ASSERT_TRUE(follower_server->Start());

  RemoteStore::Options client_options;
  client_options.port = primary.server->port();
  client_options.replica_port = follower_server->port();
  client_options.read_your_epoch_timeout_ms = 5000;
  auto client = RemoteStore::Connect(client_options);
  ASSERT_NE(client, nullptr);

  // Write to the primary, read your own write through the follower.
  vertex_t v = client->AddNode("mine");
  EXPECT_GT(client->last_commit_epoch(), 0);
  {
    auto read = client->BeginReadTxn();
    StatusOr<std::string> props = read->GetNode(v);
    ASSERT_TRUE(props.ok()) << "read-your-epoch read through the follower";
    EXPECT_EQ(*props, "mine");
  }
  EXPECT_EQ(client->read_failovers(), 0u);

  // Kill the follower: reads must transparently fail over to the primary.
  follower_server->Stop();
  follower_server.reset();
  replica->Stop();
  replica.reset();
  {
    auto read = client->BeginReadTxn();
    StatusOr<std::string> props = read->GetNode(v);
    ASSERT_TRUE(props.ok()) << "failover read against the primary";
    EXPECT_EQ(*props, "mine");
  }
  EXPECT_GE(client->read_failovers(), 1u);

  // The follower stays in its penalty box: the next read goes straight to
  // the primary without a redial storm.
  {
    auto read = client->BeginReadTxn();
    EXPECT_TRUE(read->GetNode(v).ok());
  }
  client.reset();
  std::filesystem::remove_all(root);
}

TEST(ReplicationEndToEnd, FollowerRejectsWritesOverTheWire) {
  std::string root = TempDir("readonly");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);
  primary.store->AddNode("seed");

  Replica::Options replica_options;
  replica_options.primary_port = primary.server->port();
  replica_options.graph = PrimaryOptions("").graph;
  Replica replica(replica_options);
  replica.Start();
  ASSERT_TRUE(replica.WaitReady(10000));

  // In process: the serving facade refuses every mutation.
  {
    auto txn = replica.store().BeginTxn();
    EXPECT_EQ(txn->AddNode("x").status(), Status::kUnavailable);
    EXPECT_EQ(txn->Commit().status(), Status::kUnavailable);
  }

  // Over the wire: a client dialed straight at the follower can read but
  // not write.
  GraphServer::Options follower_options;
  follower_options.frontier = &replica.frontier();
  GraphServer follower_server(replica.store(), follower_options);
  ASSERT_TRUE(follower_server.Start());
  auto client = RemoteStore::Connect("127.0.0.1", follower_server.port());
  ASSERT_NE(client, nullptr);
  {
    auto read = client->BeginReadTxn();
    EXPECT_GT(read->VertexCount(), 0u) << "reads are served";
  }
  {
    auto txn = client->BeginTxn();
    EXPECT_EQ(txn->AddNode("x").status(), Status::kUnavailable);
    txn->Abort();
  }

  follower_server.Stop();
  replica.Stop();
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace livegraph
