// Replication under adversity. Two groups:
//
//  * Multi-follower topology tests (always compiled): N >= 2 subscribers
//    on one hub, including one follower lapped past the log's hard cap
//    while the other stays live — both must converge.
//  * Chaos tests (fault build only): injected push failures, torn frames,
//    and send delays on the replication stream must end sessions cleanly
//    and converge after resubscription — never wedge, never diverge.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/store.h"
#include "replication/epoch_frontier.h"
#include "replication/replica.h"
#include "replication/replication_hub.h"
#include "server/graph_server.h"
#include "server/remote_store.h"
#include "shard/sharded_store.h"
#include "util/fault_injection.h"

namespace livegraph {
namespace {

std::string TempDir(const char* tag) {
  static int counter = 0;
  std::string dir = std::string("/tmp/lg_repl_chaos_") + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ShardOptions PrimaryOptions(const std::string& dir) {
  ShardOptions options;
  options.shards = 2;
  options.dir = dir;
  options.graph.region_reserve = size_t{1} << 30;
  options.graph.max_vertices = 1 << 16;
  options.graph.fsync_wal = false;
  return options;
}

// One primary node; `log_options` sizes the replication buffer (tiny caps
// force laps).
struct Primary {
  explicit Primary(const std::string& dir,
                   ReplicationLog::Options log_options = {})
      : hub(log_options) {
    store = ShardedStore::Recover(PrimaryOptions(dir));
    if (store == nullptr) return;
    if (!hub.Attach(*store)) return;
    frontier = std::make_unique<DomainFrontier>(hub.domain());
    GraphServer::Options options;
    options.replication = &hub;
    options.frontier = frontier.get();
    server = std::make_unique<GraphServer>(*store, options);
    ok = server->Start();
  }
  ~Primary() {
    if (server != nullptr) server->Stop();
  }

  std::unique_ptr<ShardedStore> store;
  ReplicationHub hub;
  std::unique_ptr<DomainFrontier> frontier;
  std::unique_ptr<GraphServer> server;
  bool ok = false;
};

std::unique_ptr<Replica> StartFollower(Primary& primary) {
  Replica::Options options;
  options.primary_port = primary.server->port();
  options.graph = PrimaryOptions("").graph;
  auto replica = std::make_unique<Replica>(options);
  replica->Start();
  return replica;
}

timestamp_t WriteOne(Store& store, const std::string& props, vertex_t src,
                     label_t label) {
  auto txn = store.BeginTxn();
  StatusOr<vertex_t> added = txn->AddNode(props);
  EXPECT_TRUE(added.ok());
  if (added.ok()) {
    EXPECT_TRUE(txn->AddLink(src, label, *added, "e-" + props).ok());
  }
  StatusOr<timestamp_t> epoch = txn->Commit();
  EXPECT_TRUE(epoch.ok());
  return epoch.ok() ? *epoch : 0;
}

std::vector<std::pair<vertex_t, std::string>> Links(StoreReadTxn& read,
                                                    vertex_t src,
                                                    label_t label) {
  std::vector<std::pair<vertex_t, std::string>> out;
  for (EdgeCursor c = read.ScanLinks(src, label); c.Valid(); c.Next()) {
    out.emplace_back(c.dst(), std::string(c.properties()));
  }
  return out;
}

void ExpectConverged(Store& primary, Store& follower) {
  auto p = primary.BeginReadTxn();
  auto f = follower.BeginReadTxn();
  ASSERT_EQ(f->SessionStatus(), Status::kOk);
  ASSERT_EQ(p->VertexCount(), f->VertexCount());
  for (vertex_t v = 0; v < p->VertexCount(); ++v) {
    auto pn = p->GetNode(v);
    auto fn = f->GetNode(v);
    ASSERT_EQ(pn.status(), fn.status()) << "vertex " << v;
    if (pn.ok()) {
      EXPECT_EQ(*pn, *fn) << "vertex " << v;
    }
    for (label_t label = 0; label < 2; ++label) {
      EXPECT_EQ(Links(*p, v, label), Links(*f, v, label))
          << "adjacency of " << v << "/" << label;
    }
  }
}

// --- Multi-follower topology (runs in every build) ----------------------

TEST(MultiFollower, TwoSubscribersConvergeIndependently) {
  std::string root = TempDir("two");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);

  vertex_t hub_vertex = primary.store->AddNode("hub");
  auto follower_a = StartFollower(primary);
  auto follower_b = StartFollower(primary);
  ASSERT_TRUE(follower_a->WaitReady(10000));
  ASSERT_TRUE(follower_b->WaitReady(10000));

  timestamp_t last = 0;
  for (int i = 0; i < 32; ++i) {
    last = WriteOne(*primary.store, "n" + std::to_string(i), hub_vertex,
                    static_cast<label_t>(i % 2));
  }
  ASSERT_GT(last, 0);
  ASSERT_TRUE(follower_a->frontier().WaitCovered(last, 10000));
  ASSERT_TRUE(follower_b->frontier().WaitCovered(last, 10000));
  ExpectConverged(*primary.store, follower_a->store());
  ExpectConverged(*primary.store, follower_b->store());

  follower_a->Stop();
  follower_b->Stop();
  std::filesystem::remove_all(root);
}

TEST(MultiFollower, LappedFollowerResubscribesWhileOtherStaysLive) {
  std::string root = TempDir("lapped");
  // A log small enough that any pause laps a subscriber.
  ReplicationLog::Options log_options;
  log_options.soft_bytes = 256;
  log_options.hard_bytes = 512;
  Primary primary(root + "/primary", log_options);
  ASSERT_TRUE(primary.ok);

  vertex_t hub_vertex = primary.store->AddNode("hub");
  auto live = StartFollower(primary);
  auto laggard = StartFollower(primary);
  ASSERT_TRUE(live->WaitReady(10000));
  ASSERT_TRUE(laggard->WaitReady(10000));

  // Take the laggard down, then push far more bytes than the hard cap:
  // its resume point is guaranteed evicted.
  laggard->Stop();
  timestamp_t last = 0;
  for (int i = 0; i < 64; ++i) {
    last = WriteOne(*primary.store, "burst" + std::to_string(i), hub_vertex,
                    static_cast<label_t>(i % 2));
  }
  ASSERT_GT(primary.hub.log().trim_epoch(), 0) << "the log must have lapped";
  ASSERT_TRUE(live->frontier().WaitCovered(last, 10000))
      << "the live follower must not be disturbed by the laggard";

  // The laggard comes back with a stale frontier: the hub must route it
  // through the snapshot tier, and it still converges.
  laggard->Start();
  ASSERT_TRUE(laggard->WaitReady(10000));
  ASSERT_TRUE(laggard->frontier().WaitCovered(last, 10000));
  ExpectConverged(*primary.store, live->store());
  ExpectConverged(*primary.store, laggard->store());

  live->Stop();
  laggard->Stop();
  std::filesystem::remove_all(root);
}

#if defined(LIVEGRAPH_FAULTS_ENABLED)

// --- Chaos (fault build only) -------------------------------------------

class ReplicationChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::Clear(); }
  void TearDown() override { faults::Clear(); }
};

// An injected failure in the primary's push loop kills the session; the
// follower must notice the dead stream, resubscribe, and converge.
TEST_F(ReplicationChaosTest, DroppedPushStreamResubscribesAndConverges) {
  std::string root = TempDir("drop");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);
  vertex_t hub_vertex = primary.store->AddNode("hub");

  auto follower = StartFollower(primary);
  ASSERT_TRUE(follower->WaitReady(10000));
  for (int i = 0; i < 8; ++i) {
    WriteOne(*primary.store, "pre" + std::to_string(i), hub_vertex, 0);
  }

  // Kill the live push session once; the next subscription streams clean.
  ASSERT_TRUE(faults::Configure("repl.push=error:EPIPE@once"));
  timestamp_t last = 0;
  for (int i = 0; i < 24; ++i) {
    last = WriteOne(*primary.store, "post" + std::to_string(i), hub_vertex,
                    static_cast<label_t>(i % 2));
  }
  ASSERT_TRUE(follower->frontier().WaitCovered(last, 15000))
      << "follower must resubscribe through the injected drop";
  EXPECT_GE(follower->resubscribes(), 1u);
  ExpectConverged(*primary.store, follower->store());

  follower->Stop();
  std::filesystem::remove_all(root);
}

// A torn frame (short network read, then mid-frame close) tears exactly
// one session; framing (CRC + resubscribe) keeps the topology convergent.
TEST_F(ReplicationChaosTest, TornFrameConvergesAfterResubscribe) {
  std::string root = TempDir("torn");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);
  vertex_t hub_vertex = primary.store->AddNode("hub");

  auto follower = StartFollower(primary);
  ASSERT_TRUE(follower->WaitReady(10000));

  ASSERT_TRUE(faults::Configure("net.recv=short:3@after=4,once"));
  timestamp_t last = 0;
  for (int i = 0; i < 24; ++i) {
    last = WriteOne(*primary.store, "t" + std::to_string(i), hub_vertex,
                    static_cast<label_t>(i % 2));
  }
  ASSERT_TRUE(follower->frontier().WaitCovered(last, 15000));
  ExpectConverged(*primary.store, follower->store());

  follower->Stop();
  std::filesystem::remove_all(root);
}

// Injected send delays stretch the stream without breaking it: the
// follower still converges, with zero forced resubscriptions required.
TEST_F(ReplicationChaosTest, DelayedStreamStillConverges) {
  std::string root = TempDir("delay");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);
  vertex_t hub_vertex = primary.store->AddNode("hub");

  auto follower = StartFollower(primary);
  ASSERT_TRUE(follower->WaitReady(10000));

  ASSERT_TRUE(faults::Configure("net.send=delay:20@prob=0.25"));
  timestamp_t last = 0;
  for (int i = 0; i < 16; ++i) {
    last = WriteOne(*primary.store, "d" + std::to_string(i), hub_vertex,
                    static_cast<label_t>(i % 2));
  }
  ASSERT_TRUE(follower->frontier().WaitCovered(last, 15000));
  faults::Clear();
  ExpectConverged(*primary.store, follower->store());

  follower->Stop();
  std::filesystem::remove_all(root);
}

// A degraded primary surfaces its typed status over the wire: remote
// commits report kResourceExhausted/kIOError, remote reads keep working.
TEST_F(ReplicationChaosTest, DegradedPrimarySurfacesTypedStatusOnWire) {
  std::string root = TempDir("wire");
  Primary primary(root + "/primary");
  ASSERT_TRUE(primary.ok);
  vertex_t seeded = primary.store->AddNode("seed");

  auto client = RemoteStore::Connect("127.0.0.1", primary.server->port());
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(faults::Configure("wal.append=error:ENOSPC"));
  {
    auto txn = client->BeginTxn();
    ASSERT_TRUE(txn->AddNode("doomed").ok());
    EXPECT_EQ(txn->Commit().status(), Status::kResourceExhausted)
        << "the typed degraded status must cross the wire intact";
  }
  faults::Clear();
  {
    auto txn = client->BeginTxn();
    ASSERT_TRUE(txn->AddNode("rejected").ok());
    EXPECT_EQ(txn->Commit().status(), Status::kResourceExhausted)
        << "degraded mode is sticky until restart";
  }
  {
    auto read = client->BeginReadTxn();
    auto props = read->GetNode(seeded);
    ASSERT_TRUE(props.ok()) << "reads keep serving the last durable epoch";
    EXPECT_EQ(*props, "seed");
  }

  client.reset();
  std::filesystem::remove_all(root);
}

#endif  // LIVEGRAPH_FAULTS_ENABLED

}  // namespace
}  // namespace livegraph
