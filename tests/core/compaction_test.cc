// Compaction and garbage collection (paper §6).
#include <gtest/gtest.h>

#include <string>

#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

GraphOptions TestOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  options.enable_compaction = false;  // passes triggered manually
  return options;
}

TEST(Compaction, ReclaimsInvalidatedEdgeEntries) {
  Graph graph(TestOptions());
  vertex_t v, d;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // 200 upserts of the same edge = 200 log entries, 199 invalidated.
  for (int i = 0; i < 200; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(v, 0, d, "version-" + std::to_string(i)),
              Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto before = graph.CollectMemoryStats();
  graph.RunCompactionPass();
  graph.RunCompactionPass();  // second pass reclaims the retired blocks
  auto after = graph.CollectMemoryStats();
  EXPECT_LT(after.block_store_live, before.block_store_live)
      << "compaction should shrink the live footprint";
  // Content is preserved.
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(v, 0), 1u);
  EXPECT_EQ(read.GetEdge(v, 0, d).value(), "version-199");
  // The TEL shrank back towards the minimal block.
  auto histogram = graph.CollectTelSizeHistogram();
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_LE(histogram.begin()->first, 256u);
}

TEST(Compaction, PreservesActiveSnapshots) {
  Graph graph(TestOptions());
  vertex_t v, d1, d2;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d1 = txn.AddVertex();
    d2 = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(v, 0, d1, "old"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto snapshot = graph.BeginReadOnlyTransaction();
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.DeleteEdge(v, 0, d1), Status::kOk);
    ASSERT_EQ(txn.AddEdge(v, 0, d2, "new"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  graph.RunCompactionPass();
  // The snapshot predates the delete: compaction must not steal its data.
  EXPECT_EQ(snapshot.CountEdges(v, 0), 1u);
  EXPECT_EQ(snapshot.GetEdge(v, 0, d1).value(), "old");
  EXPECT_FALSE(snapshot.GetEdge(v, 0, d2).has_value());
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(fresh.GetEdge(v, 0, d2).value(), "new");
  EXPECT_FALSE(fresh.GetEdge(v, 0, d1).has_value());
}

TEST(Compaction, CollectsVertexVersionChains) {
  Graph graph(TestOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex("v0");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  for (int i = 1; i <= 100; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.PutVertex(v, "v" + std::to_string(i)), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto before = graph.CollectMemoryStats();
  graph.RunCompactionPass();
  graph.RunCompactionPass();
  auto after = graph.CollectMemoryStats();
  EXPECT_LT(after.block_store_live, before.block_store_live);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(v).value(), "v100");
}

TEST(Compaction, PrunesUpgradeChains) {
  Graph graph(TestOptions());
  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Grow the TEL through many upgrades; each upgrade leaves the old block
  // linked as history until compaction prunes it.
  for (int i = 0; i < 500; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(hub, 0, txn.AddVertex(), "payload"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto before = graph.CollectMemoryStats();
  graph.RunCompactionPass();
  graph.RunCompactionPass();
  auto after = graph.CollectMemoryStats();
  EXPECT_LT(after.block_store_live, before.block_store_live);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(hub, 0), 500u);
}

TEST(Compaction, EmptiedTelFullyCollected) {
  Graph graph(TestOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(txn.AddEdge(v, 0, txn.AddVertex()), Status::kOk);
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    auto read = graph.BeginReadOnlyTransaction();
    auto txn = graph.BeginTransaction();
    std::vector<vertex_t> dsts;
    for (auto it = txn.GetEdges(v, 0); it.Valid(); it.Next()) {
      dsts.push_back(it.DstId());
    }
    for (vertex_t d : dsts) ASSERT_EQ(txn.DeleteEdge(v, 0, d), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  graph.RunCompactionPass();
  graph.RunCompactionPass();
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(v, 0), 0u);
  // Further writes to the emptied list still work.
  auto txn = graph.BeginTransaction();
  ASSERT_EQ(txn.AddEdge(v, 0, v, "again"), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(fresh.CountEdges(v, 0), 1u);
}

TEST(Compaction, BackgroundThreadTriggersAutomatically) {
  GraphOptions options = TestOptions();
  options.enable_compaction = true;
  options.compaction_interval = 64;  // compact frequently for the test
  Graph graph(options);
  vertex_t v, d;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  for (int i = 0; i < 1000; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(v, 0, d, std::string(100, 'x')), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Give the background thread a moment, then verify correctness (memory
  // effects are asserted in the synchronous tests above).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(v, 0), 1u);
}

TEST(Compaction, IdempotentWhenNothingToDo) {
  Graph graph(TestOptions());
  {
    auto txn = graph.BeginTransaction();
    vertex_t v = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(v, 0, v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  graph.RunCompactionPass();
  auto s1 = graph.CollectMemoryStats();
  graph.RunCompactionPass();
  graph.RunCompactionPass();
  auto s2 = graph.CollectMemoryStats();
  EXPECT_EQ(s1.block_store_live, s2.block_store_live);
}

}  // namespace
}  // namespace livegraph
