// Temporal graph processing extension (paper §9 future work): time-travel
// read transactions over retained TEL/vertex history.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

GraphOptions TestOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  options.enable_compaction = false;  // retain full history
  return options;
}

TEST(Temporal, ReadsHistoricalEdgeStates) {
  Graph graph(TestOptions());
  vertex_t v, d1, d2;
  std::vector<timestamp_t> epochs;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d1 = txn.AddVertex();
    d2 = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
    epochs.push_back(graph.ReadEpoch());  // state 0: no edges
  }
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(v, 0, d1, "first"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    epochs.push_back(graph.ReadEpoch());  // state 1: {d1}
  }
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(v, 0, d2, "second"), Status::kOk);
    ASSERT_EQ(txn.DeleteEdge(v, 0, d1), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    epochs.push_back(graph.ReadEpoch());  // state 2: {d2}
  }
  auto at0 = graph.BeginTimeTravelTransaction(epochs[0]);
  EXPECT_EQ(at0.CountEdges(v, 0), 0u);
  auto at1 = graph.BeginTimeTravelTransaction(epochs[1]);
  EXPECT_EQ(at1.CountEdges(v, 0), 1u);
  EXPECT_EQ(at1.GetEdge(v, 0, d1).value(), "first");
  EXPECT_FALSE(at1.GetEdge(v, 0, d2).has_value());
  auto at2 = graph.BeginTimeTravelTransaction(epochs[2]);
  EXPECT_EQ(at2.CountEdges(v, 0), 1u);
  EXPECT_FALSE(at2.GetEdge(v, 0, d1).has_value());
  EXPECT_EQ(at2.GetEdge(v, 0, d2).value(), "second");
}

TEST(Temporal, ReadsHistoricalVertexVersions) {
  Graph graph(TestOptions());
  vertex_t v;
  std::vector<timestamp_t> epochs;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex("v0");
    ASSERT_EQ(txn.Commit(), Status::kOk);
    epochs.push_back(graph.ReadEpoch());
  }
  for (int i = 1; i <= 5; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.PutVertex(v, "v" + std::to_string(i)), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    epochs.push_back(graph.ReadEpoch());
  }
  for (size_t i = 0; i < epochs.size(); ++i) {
    auto at = graph.BeginTimeTravelTransaction(epochs[i]);
    EXPECT_EQ(at.GetVertex(v).value(), "v" + std::to_string(i))
        << "epoch index " << i;
  }
}

TEST(Temporal, ClampsOutOfRangeEpochs) {
  Graph graph(TestOptions());
  {
    auto txn = graph.BeginTransaction();
    vertex_t v = txn.AddVertex("x");
    ASSERT_EQ(txn.AddEdge(v, 0, v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Future epoch clamps to "now".
  auto future = graph.BeginTimeTravelTransaction(1'000'000);
  EXPECT_EQ(future.read_epoch(), graph.ReadEpoch());
  EXPECT_TRUE(future.GetVertex(0).has_value());
  // Negative clamps to 0 (empty state).
  auto past = graph.BeginTimeTravelTransaction(-5);
  EXPECT_EQ(past.read_epoch(), 0);
  EXPECT_FALSE(past.GetVertex(0).has_value());
}

TEST(Temporal, PinnedEpochBlocksCompactionGc) {
  GraphOptions options = TestOptions();
  Graph graph(options);
  vertex_t v, d;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(v, 0, d, "old"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  timestamp_t old_epoch = graph.ReadEpoch();
  auto pinned = graph.BeginTimeTravelTransaction(old_epoch);
  // Overwrite the edge many times, then compact: the pinned snapshot's
  // version must survive (its epoch is published in the epoch table).
  for (int i = 0; i < 50; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(v, 0, d, "new-" + std::to_string(i)), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  graph.RunCompactionPass();
  EXPECT_EQ(pinned.GetEdge(v, 0, d).value(), "old");
  EXPECT_EQ(pinned.CountEdges(v, 0), 1u);
}

TEST(Temporal, HistoryTraversalAcrossManyEpochs) {
  // Degree-over-time query: edge count at every historical epoch matches
  // the insertion sequence.
  Graph graph(TestOptions());
  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::vector<timestamp_t> epochs;
  for (int i = 0; i < 64; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(hub, 0, txn.AddVertex()), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    epochs.push_back(graph.ReadEpoch());
  }
  for (size_t i = 0; i < epochs.size(); i += 7) {
    auto at = graph.BeginTimeTravelTransaction(epochs[i]);
    EXPECT_EQ(at.CountEdges(hub, 0), i + 1) << "epoch index " << i;
  }
}

}  // namespace
}  // namespace livegraph
