// WAL replay and checkpoint recovery (paper §6 "Recovery").
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lg_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  GraphOptions DurableOptions() {
    GraphOptions options;
    options.region_reserve = size_t{1} << 30;
    options.max_vertices = 1 << 18;
    options.enable_compaction = false;
    options.wal_path = (dir_ / "wal.log").string();
    options.fsync_wal = false;  // tmpfs: test logical replay, not fsync
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(RecoveryTest, WalOnlyReplayRestoresGraph) {
  vertex_t a, b, c;
  {
    Graph graph(DurableOptions());
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("alice");
    b = txn.AddVertex("bob");
    c = txn.AddVertex("carol");
    ASSERT_EQ(txn.AddEdge(a, 0, b, "follows"), Status::kOk);
    ASSERT_EQ(txn.AddEdge(a, 1, c, "blocks"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    auto txn2 = graph.BeginTransaction();
    ASSERT_EQ(txn2.PutVertex(b, "bob-v2"), Status::kOk);
    ASSERT_EQ(txn2.DeleteEdge(a, 1, c), Status::kOk);
    ASSERT_EQ(txn2.Commit(), Status::kOk);
  }  // crash
  auto graph = Graph::Recover(DurableOptions(), "");
  auto read = graph->BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "alice");
  EXPECT_EQ(read.GetVertex(b).value(), "bob-v2");
  EXPECT_EQ(read.GetVertex(c).value(), "carol");
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "follows");
  EXPECT_FALSE(read.GetEdge(a, 1, c).has_value());
  EXPECT_EQ(graph->VertexCount(), 3);
}

TEST_F(RecoveryTest, AbortedTransactionsNotReplayed) {
  vertex_t a;
  {
    Graph graph(DurableOptions());
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("committed");
    ASSERT_EQ(txn.Commit(), Status::kOk);
    auto doomed = graph.BeginTransaction();
    doomed.AddVertex("aborted");
    (void)doomed.PutVertex(a, "dirty");
    doomed.Abort();
  }
  auto graph = Graph::Recover(DurableOptions(), "");
  auto read = graph->BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "committed");
  EXPECT_FALSE(read.GetVertex(1).has_value());
}

TEST_F(RecoveryTest, CheckpointPlusWalTail) {
  vertex_t a, b;
  std::string ckpt = dir_.string();
  {
    Graph graph(DurableOptions());
    {
      auto txn = graph.BeginTransaction();
      a = txn.AddVertex("a");
      b = txn.AddVertex("b");
      ASSERT_EQ(txn.AddEdge(a, 0, b, "pre-ckpt"), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    timestamp_t epoch = graph.Checkpoint(ckpt, /*threads=*/2);
    EXPECT_GT(epoch, 0);
    {
      auto txn = graph.BeginTransaction();
      ASSERT_EQ(txn.PutVertex(b, "b-post"), Status::kOk);
      ASSERT_EQ(txn.AddEdge(b, 0, a, "post-ckpt"), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
  }  // crash
  auto graph = Graph::Recover(DurableOptions(), ckpt);
  auto read = graph->BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "a");
  EXPECT_EQ(read.GetVertex(b).value(), "b-post");
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "pre-ckpt");
  EXPECT_EQ(read.GetEdge(b, 0, a).value(), "post-ckpt");
}

TEST_F(RecoveryTest, TornTailTruncatedSoPostRecoveryCommitsSurvive) {
  // Crash mid-append leaves unreadable bytes at the WAL tail. Recovery
  // must truncate them: the recovered graph keeps appending to the same
  // log, and without the cut every post-recovery commit would sit behind
  // the torn record and be silently dropped by the NEXT recovery.
  vertex_t a;
  {
    Graph graph(DurableOptions());
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("pre-crash");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    // The torn tail: a header promising more bytes than exist.
    std::ofstream f(DurableOptions().wal_path,
                    std::ios::binary | std::ios::app);
    uint32_t len = 5000, crc = 0xdeadbeef, participants = 1, reserved = 0;
    timestamp_t epoch = 99;
    f.write(reinterpret_cast<char*>(&len), 4);
    f.write(reinterpret_cast<char*>(&crc), 4);
    f.write(reinterpret_cast<char*>(&epoch), 8);
    f.write(reinterpret_cast<char*>(&participants), 4);
    f.write(reinterpret_cast<char*>(&reserved), 4);
    f.write("torn", 4);
  }
  {
    auto graph = Graph::Recover(DurableOptions(), "");
    auto read = graph->BeginReadOnlyTransaction();
    EXPECT_EQ(read.GetVertex(a).value(), "pre-crash");
    // Durable work after the first crash's recovery.
    auto txn = graph->BeginTransaction();
    ASSERT_EQ(txn.PutVertex(a, "post-crash"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Second crash + recovery: the post-crash commit must be there.
  auto graph = Graph::Recover(DurableOptions(), "");
  auto read = graph->BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "post-crash");
}

TEST_F(RecoveryTest, RecoverEmptyStateIsEmptyGraph) {
  auto graph = Graph::Recover(DurableOptions(), dir_.string());
  EXPECT_EQ(graph->VertexCount(), 0);
}

TEST_F(RecoveryTest, SecondRecoveryIsStable) {
  {
    Graph graph(DurableOptions());
    auto txn = graph.BeginTransaction();
    vertex_t v = txn.AddVertex("root");
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(txn.AddEdge(v, 0, txn.AddVertex("leaf")), Status::kOk);
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    auto graph = Graph::Recover(DurableOptions(), "");
    auto read = graph->BeginReadOnlyTransaction();
    ASSERT_EQ(read.CountEdges(0, 0), 20u);
    // Write more after the first recovery.
    auto txn = graph->BeginTransaction();
    ASSERT_EQ(txn.AddEdge(0, 0, txn.AddVertex("post-recovery")), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto graph = Graph::Recover(DurableOptions(), "");
  auto read = graph->BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(0, 0), 21u);
  EXPECT_EQ(graph->VertexCount(), 22);
}

TEST_F(RecoveryTest, DeleteVertexSurvivesRecovery) {
  vertex_t a, b;
  {
    Graph graph(DurableOptions());
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("keep");
    b = txn.AddVertex("remove");
    ASSERT_EQ(txn.Commit(), Status::kOk);
    auto txn2 = graph.BeginTransaction();
    ASSERT_EQ(txn2.DeleteVertex(b), Status::kOk);
    ASSERT_EQ(txn2.Commit(), Status::kOk);
  }
  auto graph = Graph::Recover(DurableOptions(), "");
  auto read = graph->BeginReadOnlyTransaction();
  EXPECT_TRUE(read.GetVertex(a).has_value());
  EXPECT_FALSE(read.GetVertex(b).has_value());
}

TEST_F(RecoveryTest, ConcurrentCheckpointDoesNotBlockWrites) {
  // The §7.2 experiment: checkpoint while a workload runs. Here we just
  // assert correctness: everything committed before the checkpoint call
  // must be in checkpoint+tail; concurrent commits must never be lost.
  Graph graph(DurableOptions());
  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex("hub");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> added{0};
  std::thread writer([&] {
    while (!stop.load()) {
      auto txn = graph.BeginTransaction();
      if (txn.AddEdge(hub, 0, txn.AddVertex()) == Status::kOk &&
          txn.Commit() == Status::kOk) {
        added++;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  graph.Checkpoint(dir_.string(), 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  writer.join();
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(hub, 0), static_cast<size_t>(added.load()));
}

}  // namespace
}  // namespace livegraph
