// Snapshot isolation anomalies the paper's §5 "Correctness" argument rules
// out: dirty writes, dirty reads, read skew, phantom reads — plus
// first-committer-wins conflict behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

GraphOptions TestOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  options.enable_compaction = false;
  options.lock_timeout_ns = 20'000'000;  // 20 ms: deadlock tests stay fast
  return options;
}

TEST(Isolation, DirtyWritePreventedByVertexLocks) {
  Graph graph(TestOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex("base");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto t1 = graph.BeginTransaction();
  ASSERT_EQ(t1.PutVertex(v, "t1"), Status::kOk);
  // t2 cannot modify v while t1 holds its lock: it times out and aborts.
  auto t2 = graph.BeginTransaction();
  EXPECT_EQ(t2.PutVertex(v, "t2"), Status::kTimeout);
  EXPECT_FALSE(t2.active());
  ASSERT_EQ(t1.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(v).value(), "t1");
}

TEST(Isolation, DirtyReadPrevented) {
  Graph graph(TestOptions());
  vertex_t a, b;
  {
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("a0");
    b = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto writer = graph.BeginTransaction();
  ASSERT_EQ(writer.PutVertex(a, "a1"), Status::kOk);
  ASSERT_EQ(writer.AddEdge(a, 0, b, "uncommitted"), Status::kOk);
  {
    auto read = graph.BeginReadOnlyTransaction();
    EXPECT_EQ(read.GetVertex(a).value(), "a0");
    EXPECT_EQ(read.CountEdges(a, 0), 0u);
  }
  ASSERT_EQ(writer.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "a1");
  EXPECT_EQ(read.CountEdges(a, 0), 1u);
}

TEST(Isolation, ReadSkewPrevented) {
  // A reads x; B writes x and y and commits; A must keep seeing old y.
  Graph graph(TestOptions());
  vertex_t x, y;
  {
    auto txn = graph.BeginTransaction();
    x = txn.AddVertex("x0");
    y = txn.AddVertex("y0");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto a = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(a.GetVertex(x).value(), "x0");
  {
    auto b = graph.BeginTransaction();
    ASSERT_EQ(b.PutVertex(x, "x1"), Status::kOk);
    ASSERT_EQ(b.PutVertex(y, "y1"), Status::kOk);
    ASSERT_EQ(b.Commit(), Status::kOk);
  }
  EXPECT_EQ(a.GetVertex(y).value(), "y0") << "read skew: saw B's write to y";
  EXPECT_EQ(a.GetVertex(x).value(), "x0");
}

TEST(Isolation, PhantomReadPrevented) {
  // A scans a predicate (all edges of v); B inserts a matching edge and
  // commits; A's re-scan must return the same set.
  Graph graph(TestOptions());
  vertex_t v, d1, d2;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d1 = txn.AddVertex();
    d2 = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(v, 0, d1), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto a = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(a.CountEdges(v, 0), 1u);
  {
    auto b = graph.BeginTransaction();
    ASSERT_EQ(b.AddEdge(v, 0, d2), Status::kOk);
    ASSERT_EQ(b.Commit(), Status::kOk);
  }
  EXPECT_EQ(a.CountEdges(v, 0), 1u) << "phantom edge appeared mid-snapshot";
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(fresh.CountEdges(v, 0), 2u);
}

TEST(Isolation, FirstCommitterWinsOnEdgeWrites) {
  Graph graph(TestOptions());
  vertex_t v, d;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Both transactions read the same snapshot; t1 commits an edge write,
  // t2's subsequent write to the same TEL must fail the CT check.
  auto t1 = graph.BeginTransaction();
  auto t2 = graph.BeginTransaction();
  ASSERT_EQ(t1.AddEdge(v, 0, d, "t1"), Status::kOk);
  ASSERT_EQ(t1.Commit(), Status::kOk);
  EXPECT_EQ(t2.AddEdge(v, 0, d, "t2"), Status::kConflict);
  EXPECT_FALSE(t2.active());
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(v, 0, d).value(), "t1");
}

TEST(Isolation, FirstCommitterWinsOnVertexWrites) {
  Graph graph(TestOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex("v0");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto t1 = graph.BeginTransaction();
  auto t2 = graph.BeginTransaction();
  ASSERT_EQ(t1.PutVertex(v, "t1"), Status::kOk);
  ASSERT_EQ(t1.Commit(), Status::kOk);
  EXPECT_EQ(t2.PutVertex(v, "t2"), Status::kConflict);
}

TEST(Isolation, DisjointWritesBothCommit) {
  Graph graph(TestOptions());
  vertex_t v1, v2, d;
  {
    auto txn = graph.BeginTransaction();
    v1 = txn.AddVertex();
    v2 = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto t1 = graph.BeginTransaction();
  auto t2 = graph.BeginTransaction();
  ASSERT_EQ(t1.AddEdge(v1, 0, d), Status::kOk);
  ASSERT_EQ(t2.AddEdge(v2, 0, d), Status::kOk);
  EXPECT_EQ(t1.Commit(), Status::kOk);
  EXPECT_EQ(t2.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(v1, 0), 1u);
  EXPECT_EQ(read.CountEdges(v2, 0), 1u);
}

TEST(Isolation, WriteTransactionSnapshotStable) {
  // A read-write transaction's reads also come from its snapshot.
  Graph graph(TestOptions());
  vertex_t x, v, d;
  {
    auto txn = graph.BeginTransaction();
    x = txn.AddVertex("x0");
    v = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto t1 = graph.BeginTransaction();
  EXPECT_EQ(t1.GetVertex(x).value(), "x0");
  {
    auto t2 = graph.BeginTransaction();
    ASSERT_EQ(t2.PutVertex(x, "x1"), Status::kOk);
    ASSERT_EQ(t2.AddEdge(v, 0, d), Status::kOk);
    ASSERT_EQ(t2.Commit(), Status::kOk);
  }
  EXPECT_EQ(t1.GetVertex(x).value(), "x0");
  EXPECT_EQ(t1.CountEdges(v, 0), 0u);
}

TEST(Isolation, DeadlockResolvedByTimeout) {
  // t1 locks a then b; t2 locks b then a. The timeout mechanism must abort
  // at least one instead of hanging (§5).
  Graph graph(TestOptions());
  vertex_t a, b;
  {
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("a");
    b = txn.AddVertex("b");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::atomic<int> commits{0}, failures{0};
  std::thread th1([&] {
    auto t = graph.BeginTransaction();
    if (t.PutVertex(a, "t1") != Status::kOk) {
      failures++;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (t.PutVertex(b, "t1") != Status::kOk) {
      failures++;
      return;
    }
    commits += (t.Commit() == Status::kOk);
  });
  std::thread th2([&] {
    auto t = graph.BeginTransaction();
    if (t.PutVertex(b, "t2") != Status::kOk) {
      failures++;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (t.PutVertex(a, "t2") != Status::kOk) {
      failures++;
      return;
    }
    commits += (t.Commit() == Status::kOk);
  });
  th1.join();
  th2.join();
  EXPECT_GE(commits.load() + failures.load(), 2);
  EXPECT_GE(failures.load(), 1) << "deadlock should abort at least one txn";
}

TEST(Isolation, MonotonicSnapshots) {
  // Later snapshots never see less than earlier ones (GRE monotonicity).
  Graph graph(TestOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  size_t last = 0;
  for (int i = 0; i < 50; ++i) {
    {
      auto txn = graph.BeginTransaction();
      ASSERT_EQ(txn.AddEdge(v, 0, txn.AddVertex()), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    auto read = graph.BeginReadOnlyTransaction();
    size_t now = read.CountEdges(v, 0);
    EXPECT_GE(now, last);
    EXPECT_EQ(now, static_cast<size_t>(i + 1))
        << "committed write not visible to next snapshot";
    last = now;
  }
}

}  // namespace
}  // namespace livegraph
