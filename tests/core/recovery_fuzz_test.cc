// Crash-recovery fuzzing: truncate the WAL at arbitrary byte offsets
// (simulating a crash mid-write) and verify that recovery restores exactly
// the prefix of whole committed transactions that survives — never a
// partial transaction, never a corrupted state.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "storage/wal.h"
#include "util/random.h"

namespace livegraph {
namespace {

struct ModelState {
  std::map<vertex_t, std::string> vertices;
  std::map<std::pair<vertex_t, vertex_t>, std::string> edges;
};

class RecoveryFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lg_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  GraphOptions Options(const std::string& wal_name) {
    GraphOptions options;
    options.region_reserve = size_t{1} << 30;
    options.max_vertices = 1 << 16;
    options.enable_compaction = false;
    options.wal_path = (dir_ / wal_name).string();
    options.fsync_wal = false;
    // One transaction per group so the WAL record order equals the commit
    // order deterministically (the fuzz oracle depends on it).
    options.group_commit_max_batch = 1;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_P(RecoveryFuzzTest, TruncatedWalRecoversExactPrefix) {
  const uint64_t seed = GetParam();
  Xorshift rng(seed);
  constexpr int kTxns = 120;
  constexpr int kDomain = 12;

  // Run a deterministic single-threaded workload. Only transactions that
  // stage at least one logged operation produce a WAL record (no-op
  // transactions short-circuit commit), so the model snapshots below are
  // recorded *per WAL record*, in record order.
  std::vector<ModelState> state_after_record;
  state_after_record.emplace_back();  // empty state before any record
  {
    Graph graph(Options("wal.log"));
    ModelState model;
    for (int t = 0; t < kTxns; ++t) {
      auto txn = graph.BeginTransaction();
      bool logged = false;
      switch (rng.NextBounded(4)) {
        case 0: {
          std::string payload = "v" + std::to_string(t);
          vertex_t v = txn.AddVertex(payload);
          model.vertices[v] = payload;
          logged = true;
          break;
        }
        case 1: {
          auto a = static_cast<vertex_t>(rng.NextBounded(kDomain));
          std::string payload = "p" + std::to_string(t);
          if (txn.PutVertex(a, payload) == Status::kOk) {
            model.vertices[a] = payload;
            logged = true;
          }
          break;
        }
        case 2: {
          auto a = static_cast<vertex_t>(rng.NextBounded(kDomain));
          auto b = static_cast<vertex_t>(rng.NextBounded(kDomain));
          std::string payload = "e" + std::to_string(t);
          if (txn.AddEdge(a, 0, b, payload) == Status::kOk) {
            model.edges[{a, b}] = payload;
            logged = true;
          }
          break;
        }
        default: {
          auto a = static_cast<vertex_t>(rng.NextBounded(kDomain));
          auto b = static_cast<vertex_t>(rng.NextBounded(kDomain));
          if (txn.DeleteEdge(a, 0, b) == Status::kOk) {
            model.edges.erase({a, b});
            logged = true;
          }
          break;
        }
      }
      if (txn.active()) {
        ASSERT_EQ(txn.Commit(), Status::kOk);
      }
      if (logged) state_after_record.push_back(model);
    }
  }

  // Read the intact WAL once to find record boundaries (via the public
  // reader), then fuzz cut points.
  std::string wal_path = (dir_ / "wal.log").string();
  auto wal_size = static_cast<uint64_t>(std::filesystem::file_size(wal_path));
  std::string wal_bytes;
  {
    std::ifstream in(wal_path, std::ios::binary);
    wal_bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_EQ(wal_bytes.size(), wal_size);

  Xorshift cut_rng(seed * 31 + 7);
  for (int trial = 0; trial < 6; ++trial) {
    uint64_t cut = trial == 0 ? wal_size : cut_rng.NextBounded(wal_size + 1);
    std::string cut_path =
        (dir_ / ("wal_cut_" + std::to_string(trial) + ".log")).string();
    {
      std::ofstream out(cut_path, std::ios::binary);
      out.write(wal_bytes.data(), static_cast<std::streamsize>(cut));
    }
    // Oracle: number of whole records surviving the cut.
    size_t survivors = 0;
    {
      Wal::Reader reader(cut_path);
      timestamp_t epoch;
      std::string payload;
      while (reader.Next(&epoch, &payload)) survivors++;
    }
    ASSERT_LT(survivors, state_after_record.size());

    GraphOptions options;
    options.region_reserve = size_t{1} << 30;
    options.max_vertices = 1 << 16;
    options.enable_compaction = false;
    options.wal_path = cut_path;
    options.fsync_wal = false;
    auto graph = Graph::Recover(options, "");
    auto read = graph->BeginReadOnlyTransaction();

    const ModelState& expected = state_after_record[survivors];
    for (const auto& [v, props] : expected.vertices) {
      auto got = read.GetVertex(v);
      ASSERT_TRUE(got.has_value())
          << "cut=" << cut << " survivors=" << survivors << " vertex " << v;
      EXPECT_EQ(*got, props);
    }
    for (const auto& [key, props] : expected.edges) {
      auto got = read.GetEdge(key.first, 0, key.second);
      ASSERT_TRUE(got.has_value())
          << "cut=" << cut << " survivors=" << survivors << " edge "
          << key.first << "->" << key.second;
      EXPECT_EQ(*got, props);
    }
    // No extra edges beyond the prefix state.
    for (vertex_t v = 0; v < kDomain; ++v) {
      size_t expected_degree = 0;
      for (const auto& [key, unused] : expected.edges) {
        if (key.first == v) expected_degree++;
      }
      EXPECT_EQ(read.CountEdges(v, 0), expected_degree)
          << "cut=" << cut << " survivors=" << survivors << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace livegraph
