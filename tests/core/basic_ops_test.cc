// Single-threaded basic operations (paper §4): vertex CRUD, edge upserts,
// deletions, sequential scans, single-edge reads, read-your-writes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

GraphOptions SmallOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 20;
  options.max_workers = 64;
  options.enable_compaction = false;
  return options;
}

TEST(BasicOps, AddAndGetVertex) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t v = txn.AddVertex("alice");
  EXPECT_EQ(v, 0);
  EXPECT_EQ(txn.GetVertex(v).value(), "alice");  // read-your-writes
  ASSERT_EQ(txn.Commit(), Status::kOk);

  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(v).value(), "alice");
  EXPECT_FALSE(read.GetVertex(v + 1).has_value());
}

TEST(BasicOps, UncommittedVertexInvisible) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t v = txn.AddVertex("hidden");
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_FALSE(read.GetVertex(v).has_value());
  ASSERT_EQ(txn.Commit(), Status::kOk);
  // Old snapshot still must not see it.
  EXPECT_FALSE(read.GetVertex(v).has_value());
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_TRUE(fresh.GetVertex(v).has_value());
}

TEST(BasicOps, PutVertexVersions) {
  Graph graph(SmallOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex("v1");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto old_snapshot = graph.BeginReadOnlyTransaction();
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.PutVertex(v, "v2"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Multi-versioning: the old snapshot walks back to the old version.
  EXPECT_EQ(old_snapshot.GetVertex(v).value(), "v1");
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(fresh.GetVertex(v).value(), "v2");
}

TEST(BasicOps, DeleteVertexTombstone) {
  Graph graph(SmallOptions());
  vertex_t v;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex("v1");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto old_snapshot = graph.BeginReadOnlyTransaction();
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.DeleteVertex(v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  EXPECT_TRUE(old_snapshot.GetVertex(v).has_value());
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_FALSE(fresh.GetVertex(v).has_value());
}

TEST(BasicOps, AddEdgeAndScan) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex("a");
  vertex_t b = txn.AddVertex("b");
  vertex_t c = txn.AddVertex("c");
  ASSERT_EQ(txn.AddEdge(a, 0, b, "a->b"), Status::kOk);
  ASSERT_EQ(txn.AddEdge(a, 0, c, "a->c"), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);

  auto read = graph.BeginReadOnlyTransaction();
  std::vector<vertex_t> dsts;
  std::vector<std::string> props;
  for (auto it = read.GetEdges(a, 0); it.Valid(); it.Next()) {
    dsts.push_back(it.DstId());
    props.emplace_back(it.Properties());
  }
  // Newest-first iteration order (Figure 3: scanned from the tail).
  ASSERT_EQ(dsts.size(), 2u);
  EXPECT_EQ(dsts[0], c);
  EXPECT_EQ(dsts[1], b);
  EXPECT_EQ(props[0], "a->c");
  EXPECT_EQ(props[1], "a->b");
  EXPECT_EQ(read.CountEdges(a, 0), 2u);
  EXPECT_EQ(read.CountEdges(b, 0), 0u);
}

TEST(BasicOps, GetSingleEdge) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  vertex_t b = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, 0, b, "weight=3"), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);

  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "weight=3");
  EXPECT_FALSE(read.GetEdge(a, 0, a).has_value());
  EXPECT_FALSE(read.GetEdge(b, 0, a).has_value());
  EXPECT_FALSE(read.GetEdge(a, 1, b).has_value());  // other label
}

TEST(BasicOps, UpsertReplacesEdge) {
  Graph graph(SmallOptions());
  vertex_t a, b;
  {
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex();
    b = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(a, 0, b, "old"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(a, 0, b, "new"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "new");
  // Exactly one visible version after the upsert.
  EXPECT_EQ(read.CountEdges(a, 0), 1u);
}

TEST(BasicOps, DeleteEdge) {
  Graph graph(SmallOptions());
  vertex_t a, b, c;
  {
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex();
    b = txn.AddVertex();
    c = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(a, 0, b), Status::kOk);
    ASSERT_EQ(txn.AddEdge(a, 0, c), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto old_snapshot = graph.BeginReadOnlyTransaction();
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.DeleteEdge(a, 0, b), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  EXPECT_EQ(old_snapshot.CountEdges(a, 0), 2u);  // snapshot unaffected
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(fresh.CountEdges(a, 0), 1u);
  EXPECT_FALSE(fresh.GetEdge(a, 0, b).has_value());
  EXPECT_TRUE(fresh.GetEdge(a, 0, c).has_value());
}

TEST(BasicOps, DeleteMissingEdgeReturnsNotFound) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  vertex_t b = txn.AddVertex();
  EXPECT_EQ(txn.DeleteEdge(a, 0, b), Status::kNotFound);
  ASSERT_EQ(txn.AddEdge(a, 0, b), Status::kOk);
  EXPECT_EQ(txn.DeleteEdge(a, 0, b), Status::kOk);  // delete own write
  EXPECT_EQ(txn.CountEdges(a, 0), 0u);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(a, 0), 0u);
}

TEST(BasicOps, MultipleLabelsSeparateAdjacencyLists) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  for (label_t label = 0; label < 10; ++label) {
    vertex_t d = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(a, label, d), Status::kOk);
  }
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  for (label_t label = 0; label < 10; ++label) {
    EXPECT_EQ(read.CountEdges(a, label), 1u) << "label " << label;
  }
  EXPECT_EQ(read.CountEdges(a, 10), 0u);
}

TEST(BasicOps, AbortDiscardsEverything) {
  Graph graph(SmallOptions());
  vertex_t a, b;
  {
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("a");
    b = txn.AddVertex("b");
    ASSERT_EQ(txn.AddEdge(a, 0, b, "x"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.PutVertex(a, "a2"), Status::kOk);
    ASSERT_EQ(txn.AddEdge(a, 0, a, "self"), Status::kOk);
    ASSERT_EQ(txn.DeleteEdge(a, 0, b), Status::kOk);
    txn.Abort();
    EXPECT_EQ(txn.Commit(), Status::kNotActive);
  }
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "a");
  EXPECT_EQ(read.CountEdges(a, 0), 1u);
  EXPECT_TRUE(read.GetEdge(a, 0, b).has_value());
}

TEST(BasicOps, DestructorAbortsActiveTransaction) {
  Graph graph(SmallOptions());
  vertex_t a;
  {
    auto txn = graph.BeginTransaction();
    a = txn.AddVertex("a");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    auto txn = graph.BeginTransaction();
    (void)txn.PutVertex(a, "dirty");
    // falls out of scope without Commit
  }
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), "a");
}

TEST(BasicOps, ManyEdgesForceBlockUpgrades) {
  Graph graph(SmallOptions());
  constexpr int kEdges = 5000;
  auto txn = graph.BeginTransaction();
  vertex_t hub = txn.AddVertex("hub");
  for (int i = 0; i < kEdges; ++i) {
    vertex_t d = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(hub, 0, d, "payload"), Status::kOk);
  }
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(hub, 0), static_cast<size_t>(kEdges));
  // Newest-first: first edge returned is the last inserted.
  auto it = read.GetEdges(hub, 0);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.DstId(), static_cast<vertex_t>(kEdges));
}

TEST(BasicOps, SelfEdgesAndParallelLabels) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, 0, a, "self0"), Status::kOk);
  ASSERT_EQ(txn.AddEdge(a, 1, a, "self1"), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(a, 0, a).value(), "self0");
  EXPECT_EQ(read.GetEdge(a, 1, a).value(), "self1");
}

TEST(BasicOps, EmptyProperties) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  vertex_t b = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, 0, b), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_TRUE(read.GetVertex(a).has_value());
  EXPECT_EQ(read.GetVertex(a).value(), "");
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "");
}

TEST(BasicOps, LargeProperties) {
  Graph graph(SmallOptions());
  std::string big(100'000, 'x');
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex(big);
  vertex_t b = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, 0, b, big), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), big);
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), big);
}

TEST(BasicOps, EdgeToNonexistentSourceRejected) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  EXPECT_EQ(txn.AddEdge(12345, 0, 0), Status::kNotFound);
  EXPECT_EQ(txn.PutVertex(12345, "x"), Status::kNotFound);
}

TEST(BasicOps, MemoryStatsTrackAllocation) {
  Graph graph(SmallOptions());
  auto before = graph.CollectMemoryStats();
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex("payload");
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(txn.AddEdge(a, 0, txn.AddVertex(), "p"), Status::kOk);
  }
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto after = graph.CollectMemoryStats();
  EXPECT_GT(after.block_store_allocated, before.block_store_allocated);
  EXPECT_GT(after.block_store_live, 0u);
}

TEST(BasicOps, TelSizeHistogramPowersOfTwo) {
  Graph graph(SmallOptions());
  auto txn = graph.BeginTransaction();
  vertex_t hub = txn.AddVertex();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(txn.AddEdge(hub, 0, txn.AddVertex()), Status::kOk);
  }
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto histogram = graph.CollectTelSizeHistogram();
  ASSERT_FALSE(histogram.empty());
  for (const auto& [size, count] : histogram) {
    EXPECT_EQ(size & (size - 1), 0u) << "block size must be a power of two";
    EXPECT_GT(count, 0u);
  }
}

}  // namespace
}  // namespace livegraph
