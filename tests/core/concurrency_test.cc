// Multi-threaded stress: snapshot-consistent counters, concurrent
// scan-during-write, and lock churn under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "util/random.h"

namespace livegraph {
namespace {

GraphOptions TestOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 31;
  options.max_vertices = 1 << 20;
  options.enable_compaction = false;
  return options;
}

TEST(Concurrency, ParallelDisjointInsertsAllVisible) {
  Graph graph(TestOptions());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<vertex_t> hubs(kThreads);
  {
    auto txn = graph.BeginTransaction();
    for (int t = 0; t < kThreads; ++t) hubs[static_cast<size_t>(t)] = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = graph.BeginTransaction();
        vertex_t d = txn.AddVertex();
        ASSERT_EQ(txn.AddEdge(hubs[static_cast<size_t>(t)], 0, d, "x"),
                  Status::kOk);
        ASSERT_EQ(txn.Commit(), Status::kOk);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto read = graph.BeginReadOnlyTransaction();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(read.CountEdges(hubs[static_cast<size_t>(t)], 0),
              static_cast<size_t>(kPerThread));
  }
}

TEST(Concurrency, ContendedSingleVertexSerializes) {
  // All writers hammer one TEL. Locks + CT checks must serialize them; the
  // survivor count must equal successful commits.
  Graph graph(TestOptions());
  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex();
    for (int i = 0; i < 1024; ++i) txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  constexpr int kThreads = 8;
  constexpr int kAttempts = 300;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kAttempts; ++i) {
        auto txn = graph.BeginTransaction();
        vertex_t d = 1 + static_cast<vertex_t>(rng.NextBounded(1024));
        Status st = txn.AddEdge(hub, 0, d, "w");
        if (st != Status::kOk) continue;  // conflict/timeout: retry-less skip
        if (txn.Commit() == Status::kOk) committed++;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_GT(committed.load(), 0);
  // Upserts may collapse destinations; verify no duplicates and no
  // uncommitted leakage instead of exact counts.
  auto read = graph.BeginReadOnlyTransaction();
  std::vector<bool> seen(1025, false);
  size_t scanned = 0;
  for (auto it = read.GetEdges(hub, 0); it.Valid(); it.Next()) {
    ASSERT_GE(it.DstId(), 1);
    ASSERT_LE(it.DstId(), 1024);
    ASSERT_FALSE(seen[static_cast<size_t>(it.DstId())])
        << "duplicate visible version for dst " << it.DstId();
    seen[static_cast<size_t>(it.DstId())] = true;
    scanned++;
  }
  EXPECT_GT(scanned, 0u);
  EXPECT_LE(scanned, static_cast<size_t>(committed.load()));
}

TEST(Concurrency, ReadersNeverBlockAndSeeConsistentCounts) {
  // Writer thread appends edges in pairs inside one transaction; readers
  // must always observe an even count (both or neither).
  Graph graph(TestOptions());
  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      auto txn = graph.BeginTransaction();
      vertex_t d1 = txn.AddVertex();
      vertex_t d2 = txn.AddVertex();
      if (txn.AddEdge(hub, 0, d1) != Status::kOk ||
          txn.AddEdge(hub, 0, d2) != Status::kOk ||
          txn.Commit() != Status::kOk) {
        writer_failed.store(true);
        return;
      }
    }
  });
  std::atomic<int64_t> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto read = graph.BeginReadOnlyTransaction();
        size_t count = read.CountEdges(hub, 0);
        if (count % 2 != 0) violations++;
      }
    });
  }
  writer.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(writer_failed.load());
  EXPECT_EQ(violations.load(), 0)
      << "reader observed a half-applied transaction";
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(hub, 0), 800u);
}

TEST(Concurrency, MixedReadWriteStressConservesInvariant) {
  // Invariant: every committed transaction moves one "token" edge from one
  // hub to another, so the total token count is constant in every snapshot.
  Graph graph(TestOptions());
  constexpr int kHubs = 4;
  constexpr int kTokens = 32;
  std::vector<vertex_t> hubs(kHubs);
  std::vector<vertex_t> tokens(kTokens);
  {
    auto txn = graph.BeginTransaction();
    for (auto& h : hubs) h = txn.AddVertex();
    for (int i = 0; i < kTokens; ++i) {
      tokens[static_cast<size_t>(i)] = txn.AddVertex();
      ASSERT_EQ(txn.AddEdge(hubs[0], 0, tokens[static_cast<size_t>(i)]),
                Status::kOk);
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<int64_t> violations{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Xorshift rng(static_cast<uint64_t>(w) * 7 + 1);
      for (int i = 0; i < 200; ++i) {
        auto txn = graph.BeginTransaction();
        auto from = static_cast<size_t>(rng.NextBounded(kHubs));
        auto to = static_cast<size_t>(rng.NextBounded(kHubs));
        if (from == to) continue;
        // Find a token currently on `from` in our snapshot.
        auto it = txn.GetEdges(hubs[from], 0);
        if (!it.Valid()) continue;
        vertex_t token = it.DstId();
        if (txn.DeleteEdge(hubs[from], 0, token) != Status::kOk) continue;
        if (txn.AddEdge(hubs[to], 0, token) != Status::kOk) continue;
        (void)txn.Commit();  // conflicts simply drop the move
      }
    });
  }
  std::thread checker([&] {
    while (!stop.load()) {
      auto read = graph.BeginReadOnlyTransaction();
      size_t total = 0;
      for (int h = 0; h < kHubs; ++h) {
        total += read.CountEdges(hubs[static_cast<size_t>(h)], 0);
      }
      if (total != kTokens) violations++;
    }
  });
  for (auto& th : workers) th.join();
  stop.store(true);
  checker.join();
  EXPECT_EQ(violations.load(), 0)
      << "snapshot saw a token mid-flight (atomicity violation)";
  auto read = graph.BeginReadOnlyTransaction();
  size_t total = 0;
  for (int h = 0; h < kHubs; ++h) {
    total += read.CountEdges(hubs[static_cast<size_t>(h)], 0);
  }
  EXPECT_EQ(total, static_cast<size_t>(kTokens));
}

TEST(Concurrency, GroupCommitBatchesManyWriters) {
  Graph graph(TestOptions());
  vertex_t anchor;
  {
    auto txn = graph.BeginTransaction();
    anchor = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  constexpr int kThreads = 16;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = graph.BeginTransaction();
        vertex_t v = txn.AddVertex("node");
        if (txn.AddEdge(v, 0, anchor) != Status::kOk ||
            txn.Commit() != Status::kOk) {
          failures++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0) << "disjoint writers must never conflict";
  EXPECT_EQ(graph.VertexCount(), 1 + kThreads * kPerThread);
}

}  // namespace
}  // namespace livegraph
