// Randomized model test: LiveGraph vs. an in-memory reference executed at
// commit points. Parameterized over seeds and workload shapes (TEST_P).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/graph.h"
#include "core/transaction.h"
#include "util/random.h"

namespace livegraph {
namespace {

struct Model {
  std::map<vertex_t, std::string> vertices;
  std::map<std::tuple<vertex_t, label_t, vertex_t>, std::string> edges;
};

struct ModelParam {
  uint64_t seed;
  int transactions;
  int ops_per_txn;
  double abort_probability;
  int domain;  // vertices created up front
};

class ModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ModelTest, MatchesReferenceModel) {
  const ModelParam param = GetParam();
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  options.enable_compaction = (param.seed % 2 == 0);  // both modes covered
  options.compaction_interval = 97;
  Graph graph(options);
  Model model;
  Xorshift rng(param.seed);

  {
    auto txn = graph.BeginTransaction();
    for (int i = 0; i < param.domain; ++i) {
      vertex_t v = txn.AddVertex("init");
      model.vertices[v] = "init";
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  for (int t = 0; t < param.transactions; ++t) {
    auto txn = graph.BeginTransaction();
    Model staged = model;  // reference copy for this transaction
    bool doomed = rng.NextDouble() < param.abort_probability;
    bool failed = false;
    for (int op = 0; op < param.ops_per_txn && !failed; ++op) {
      auto v = static_cast<vertex_t>(rng.NextBounded(param.domain));
      auto d = static_cast<vertex_t>(rng.NextBounded(param.domain));
      auto label = static_cast<label_t>(rng.NextBounded(3));
      switch (rng.NextBounded(5)) {
        case 0: {  // upsert edge
          std::string payload = "p" + std::to_string(rng.NextBounded(1000));
          Status st = txn.AddEdge(v, label, d, payload);
          ASSERT_EQ(st, Status::kOk);
          staged.edges[{v, label, d}] = payload;
          break;
        }
        case 1: {  // delete edge
          Status st = txn.DeleteEdge(v, label, d);
          auto it = staged.edges.find({v, label, d});
          if (it != staged.edges.end()) {
            ASSERT_EQ(st, Status::kOk);
            staged.edges.erase(it);
          } else {
            ASSERT_EQ(st, Status::kNotFound);
          }
          break;
        }
        case 2: {  // put vertex
          std::string payload = "v" + std::to_string(rng.NextBounded(1000));
          ASSERT_EQ(txn.PutVertex(v, payload), Status::kOk);
          staged.vertices[v] = payload;
          break;
        }
        case 3: {  // read edge within the transaction
          auto got = txn.GetEdge(v, label, d);
          auto it = staged.edges.find({v, label, d});
          if (it != staged.edges.end()) {
            ASSERT_TRUE(got.has_value());
            ASSERT_EQ(*got, it->second);
          } else {
            ASSERT_FALSE(got.has_value());
          }
          break;
        }
        default: {  // scan within the transaction
          std::set<vertex_t> seen;
          for (auto it = txn.GetEdges(v, label); it.Valid(); it.Next()) {
            ASSERT_TRUE(seen.insert(it.DstId()).second)
                << "duplicate dst in scan";
          }
          size_t expected = 0;
          for (const auto& [key, unused] : staged.edges) {
            if (std::get<0>(key) == v && std::get<1>(key) == label) {
              ASSERT_TRUE(seen.count(std::get<2>(key)) == 1);
              expected++;
            }
          }
          ASSERT_EQ(seen.size(), expected);
          break;
        }
      }
    }
    if (doomed) {
      txn.Abort();
    } else {
      ASSERT_EQ(txn.Commit(), Status::kOk);
      model = std::move(staged);
    }
  }

  // Final state must match the reference exactly.
  auto read = graph.BeginReadOnlyTransaction();
  for (const auto& [v, props] : model.vertices) {
    auto got = read.GetVertex(v);
    ASSERT_TRUE(got.has_value()) << "vertex " << v;
    EXPECT_EQ(*got, props) << "vertex " << v;
  }
  for (const auto& [key, props] : model.edges) {
    auto [v, label, d] = key;
    auto got = read.GetEdge(v, label, d);
    ASSERT_TRUE(got.has_value()) << v << "-[" << label << "]->" << d;
    EXPECT_EQ(*got, props);
  }
  // Count check per (v,label) catches extra visible entries.
  std::map<std::pair<vertex_t, label_t>, size_t> degree;
  for (const auto& [key, unused] : model.edges) {
    degree[{std::get<0>(key), std::get<1>(key)}]++;
  }
  for (vertex_t v = 0; v < param.domain; ++v) {
    for (label_t label = 0; label < 3; ++label) {
      size_t expected = 0;
      if (auto it = degree.find({v, label}); it != degree.end()) {
        expected = it->second;
      }
      ASSERT_EQ(read.CountEdges(v, label), expected)
          << "degree mismatch at v=" << v << " label=" << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ModelTest,
    ::testing::Values(ModelParam{1, 200, 5, 0.0, 8},
                      ModelParam{2, 200, 5, 0.3, 8},
                      ModelParam{3, 400, 3, 0.1, 4},
                      ModelParam{4, 100, 20, 0.2, 16},
                      ModelParam{5, 600, 2, 0.5, 2},
                      ModelParam{6, 150, 10, 0.15, 32},
                      ModelParam{7, 800, 1, 0.0, 1},
                      ModelParam{8, 300, 8, 0.25, 12}));

}  // namespace
}  // namespace livegraph
