// Stress tests for the pipelined group-commit path: GRE monotonicity,
// all-or-nothing group visibility under concurrent snapshots, total epoch
// order across writers, WAL durability of overlapped groups, and the
// graceful max_vertices capacity failure.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "baselines/livegraph_store.h"
#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

GraphOptions StressOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 31;
  options.max_vertices = 1 << 20;
  options.enable_compaction = false;
  return options;
}

std::string TempWalPath(const char* tag) {
  return "/tmp/livegraph_commit_pipeline_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".wal";
}

// N writers commit continuously while readers assert that the global read
// epoch never moves backwards and that every commit epoch a writer gets
// back is already visible when Commit() returns.
TEST(CommitPipeline, GreAdvancesMonotonicallyUnderLoad) {
  GraphOptions options = StressOptions();
  options.wal_path = TempWalPath("gre");
  options.fsync_wal = false;
  constexpr int kWriters = 8;
  constexpr int kTxnsPerWriter = 300;
  {
    Graph graph(options);
    std::vector<vertex_t> bases(kWriters);
    {
      auto txn = graph.BeginTransaction();
      for (auto& b : bases) b = txn.AddVertex("base");
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }

    std::atomic<bool> stop{false};
    std::atomic<bool> violation{false};
    std::thread monitor([&] {
      timestamp_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        timestamp_t now = graph.ReadEpoch();
        if (now < last) violation.store(true, std::memory_order_release);
        last = now;
        std::this_thread::yield();
      }
    });

    std::vector<std::vector<timestamp_t>> epochs(kWriters);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kTxnsPerWriter; ++i) {
          auto txn = graph.BeginTransaction();
          ASSERT_EQ(txn.AddEdge(bases[static_cast<size_t>(w)], 0,
                                1000 + i, "e"),
                    Status::kOk);
          StatusOr<timestamp_t> committed = txn.Commit();
          ASSERT_EQ(committed, Status::kOk);
          // Commit() must not return before its whole group is visible.
          EXPECT_GE(graph.ReadEpoch(), *committed);
          epochs[static_cast<size_t>(w)].push_back(*committed);
        }
      });
    }
    for (auto& t : writers) t.join();
    stop.store(true, std::memory_order_release);
    monitor.join();
    EXPECT_FALSE(violation.load());

    // Per-writer commit epochs are non-decreasing (each transaction began
    // after the previous one's group was visible), and the final GRE
    // covers the maximum epoch handed out.
    timestamp_t max_epoch = 0;
    for (const auto& per_writer : epochs) {
      for (size_t i = 1; i < per_writer.size(); ++i) {
        EXPECT_GT(per_writer[i], per_writer[i - 1]);
      }
      if (!per_writer.empty()) {
        max_epoch = std::max(max_epoch, per_writer.back());
      }
    }
    EXPECT_EQ(graph.ReadEpoch(), max_epoch);
  }
  std::remove(options.wal_path.c_str());
}

// Every transaction writes the same value to TWO vertices; snapshot
// readers must never observe the pair out of sync (a half-visible commit
// group) no matter how the pipeline overlaps persist and apply phases.
TEST(CommitPipeline, SnapshotsNeverSeePartialCommitGroup) {
  GraphOptions options = StressOptions();
  options.wal_path = TempWalPath("atomic");
  options.fsync_wal = false;
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kTxnsPerWriter = 250;
  {
    Graph graph(options);
    std::vector<std::pair<vertex_t, vertex_t>> pairs(kWriters);
    {
      auto txn = graph.BeginTransaction();
      for (auto& [a, b] : pairs) {
        a = txn.AddVertex("0");
        b = txn.AddVertex("0");
      }
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }

    std::atomic<bool> stop{false};
    std::atomic<int> torn_reads{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          auto read = graph.BeginReadOnlyTransaction();
          for (const auto& [a, b] : pairs) {
            StatusOr<std::string_view> va = read.GetVertex(a);
            StatusOr<std::string_view> vb = read.GetVertex(b);
            ASSERT_TRUE(va.ok());
            ASSERT_TRUE(vb.ok());
            if (*va != *vb) torn_reads.fetch_add(1);
          }
        }
      });
    }

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 1; i <= kTxnsPerWriter; ++i) {
          auto txn = graph.BeginTransaction();
          std::string value = std::to_string(i);
          ASSERT_EQ(txn.PutVertex(pairs[static_cast<size_t>(w)].first, value),
                    Status::kOk);
          ASSERT_EQ(txn.PutVertex(pairs[static_cast<size_t>(w)].second, value),
                    Status::kOk);
          ASSERT_EQ(txn.Commit(), Status::kOk);
        }
      });
    }
    for (auto& t : writers) t.join();
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    EXPECT_EQ(torn_reads.load(), 0);

    auto read = graph.BeginReadOnlyTransaction();
    for (const auto& [a, b] : pairs) {
      EXPECT_EQ(*read.GetVertex(a), std::to_string(kTxnsPerWriter));
      EXPECT_EQ(*read.GetVertex(b), std::to_string(kTxnsPerWriter));
    }
  }
  std::remove(options.wal_path.c_str());
}

// Commit epochs form one total order: collecting every epoch from every
// writer and sorting must yield a dense range (each group advances GWE by
// exactly one and GRE follows in the same order).
TEST(CommitPipeline, CommitEpochsAreTotalisedInOrder) {
  GraphOptions options = StressOptions();
  constexpr int kWriters = 6;
  constexpr int kTxnsPerWriter = 200;
  Graph graph(options);
  std::vector<vertex_t> bases(kWriters);
  {
    auto txn = graph.BeginTransaction();
    for (auto& b : bases) b = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::vector<std::vector<timestamp_t>> epochs(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = graph.BeginTransaction();
        ASSERT_EQ(
            txn.AddEdge(bases[static_cast<size_t>(w)], 0, 5000 + i, {}),
            Status::kOk);
        StatusOr<timestamp_t> committed = txn.Commit();
        ASSERT_EQ(committed, Status::kOk);
        epochs[static_cast<size_t>(w)].push_back(*committed);
      }
    });
  }
  for (auto& t : writers) t.join();

  std::vector<timestamp_t> all;
  for (const auto& per_writer : epochs) {
    all.insert(all.end(), per_writer.begin(), per_writer.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_FALSE(all.empty());
  // Dense: every epoch between the first group's and the last group's was
  // produced by some group (groups may hold many transactions, so
  // duplicates are expected — gaps are not).
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i] - all[i - 1], 1) << "gap in commit epoch sequence";
  }
  EXPECT_EQ(graph.ReadEpoch(), all.back());
}

// Concurrent committers' WAL batches (gathered with writev from pooled
// per-worker buffers) must replay to the same graph after a restart.
TEST(CommitPipeline, OverlappedGroupsRecoverFromWal) {
  GraphOptions options = StressOptions();
  options.wal_path = TempWalPath("recover");
  options.fsync_wal = false;
  constexpr int kWriters = 6;
  constexpr int kTxnsPerWriter = 120;
  std::vector<vertex_t> bases(kWriters);
  {
    Graph graph(options);
    {
      auto txn = graph.BeginTransaction();
      for (auto& b : bases) b = txn.AddVertex("hub");
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kTxnsPerWriter; ++i) {
          auto txn = graph.BeginTransaction();
          std::string props = "w" + std::to_string(w) + "#" +
                              std::to_string(i);
          ASSERT_EQ(txn.AddEdge(bases[static_cast<size_t>(w)], 0,
                                10000 + i, props),
                    Status::kOk);
          ASSERT_EQ(txn.Commit(), Status::kOk);
        }
      });
    }
    for (auto& t : writers) t.join();
  }

  auto recovered = Graph::Recover(options, /*checkpoint_dir=*/"");
  ASSERT_NE(recovered, nullptr);
  auto read = recovered->BeginReadOnlyTransaction();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(read.CountEdges(bases[static_cast<size_t>(w)], 0),
              static_cast<size_t>(kTxnsPerWriter));
    StatusOr<std::string_view> props = read.GetEdge(
        bases[static_cast<size_t>(w)], 0, 10000 + kTxnsPerWriter - 1);
    ASSERT_TRUE(props.ok());
    EXPECT_EQ(*props, "w" + std::to_string(w) + "#" +
                          std::to_string(kTxnsPerWriter - 1));
  }
  std::remove(options.wal_path.c_str());
}

// Exhausting max_vertices fails the operation, not the process, and the
// transaction stays usable; the v2 Store surface reports kOutOfRange.
TEST(CommitPipeline, AddVertexPastCapacityFailsGracefully) {
  GraphOptions options = StressOptions();
  options.max_vertices = 4;
  {
    Graph graph(options);
    auto txn = graph.BeginTransaction();
    for (int i = 0; i < 4; ++i) {
      EXPECT_NE(txn.AddVertex("v"), kNullVertex);
    }
    EXPECT_EQ(txn.AddVertex("overflow"), kNullVertex);
    EXPECT_TRUE(txn.active());  // capacity is not a conflict
    ASSERT_EQ(txn.Commit(), Status::kOk);
    auto read = graph.BeginReadOnlyTransaction();
    EXPECT_EQ(read.VertexCount(), 4);
  }

  LiveGraphStore store(options);
  auto txn = store.BeginTxn();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(txn->AddNode("n").ok());
  }
  StatusOr<vertex_t> overflow = txn->AddNode("overflow");
  EXPECT_EQ(overflow.status(), Status::kOutOfRange);
  // The session survives the capacity failure.
  EXPECT_EQ(txn->UpdateNode(0, "updated"), Status::kOk);
  EXPECT_EQ(txn->Commit(), Status::kOk);
}

}  // namespace
}  // namespace livegraph
