// Race-detection stress shaped for ThreadSanitizer (docs/TESTING.md).
//
// These are reduced-repetition versions of the commit-pipeline and
// sharded-store stress tests: iteration counts are sized so the whole
// binary stays fast under TSan's ~5-15x slowdown while still driving every
// cross-thread edge the annotations in util/sync_annotations.h document —
// futex lock hand-off, commit-ring slot recycling, epoch publish/observe,
// compaction against live writers, and the multi-shard coordinator path.
// The binary also runs (quickly) in normal builds, where it doubles as a
// smoke test for the same interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "shard/sharded_store.h"

namespace livegraph {
namespace {

// Under TSan everything is instrumented and slow; keep wall-clock bounded.
#if defined(__SANITIZE_THREAD__)
constexpr int kTxnsPerWriter = 60;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kTxnsPerWriter = 60;
#else
constexpr int kTxnsPerWriter = 200;
#endif
#else
constexpr int kTxnsPerWriter = 200;
#endif

// Writers hammer a SMALL shared vertex set (maximum futex-lock contention
// and TEL reuse) while snapshot readers scan concurrently and compaction
// runs at an aggressive interval, so lock hand-off, epoch publication, and
// block retire/reclaim all interleave with live traffic.
TEST(TsanStress, CommitPipelineWithCompactionAndReaders) {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 16;
  options.enable_compaction = true;
  options.compaction_interval = 32;  // many passes during the run
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kSharedVertices = 4;

  Graph graph(options);
  std::vector<vertex_t> hubs(kSharedVertices);
  {
    auto txn = graph.BeginTransaction();
    for (auto& h : hubs) h = txn.AddVertex("0");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto read = graph.BeginReadOnlyTransaction();
        for (vertex_t h : hubs) {
          StatusOr<std::string_view> props = read.GetVertex(h);
          ASSERT_TRUE(props.ok());
          // Walk the adjacency list to race scans against writers and
          // compaction rewrites; every admitted entry must be coherent.
          size_t n = 0;
          for (auto it = read.GetEdges(h, 0); it.Valid(); it.Next()) {
            ASSERT_GE(it.DstId(), 1000);
            n++;
          }
          ASSERT_EQ(n, read.CountEdges(h, 0));
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 1; i <= kTxnsPerWriter; ++i) {
        // Writers share hubs, so vertex-lock conflicts (the paper's
        // timeout-and-rollback, §5) are expected — abort and retry; the
        // interleaving, not the success rate, is what this test drives.
        while (true) {
          auto txn = graph.BeginTransaction();
          vertex_t hub =
              hubs[static_cast<size_t>((w + i) % kSharedVertices)];
          // Churn: add one edge, delete an older one, rewrite the vertex
          // — feeds compaction dead entries and version chains.
          Status st = txn.AddEdge(hub, 0, 1000 + w * kTxnsPerWriter + i,
                                  "e");
          if (st == Status::kOk && i > 1) {
            txn.DeleteEdge(hub, 0, 1000 + w * kTxnsPerWriter + i - 1);
            if (!txn.active()) st = Status::kConflict;
          }
          if (st == Status::kOk) {
            st = txn.PutVertex(hub, std::to_string(i));
          }
          if (st != Status::kOk) {
            if (txn.active()) txn.Abort();
            continue;
          }
          StatusOr<timestamp_t> committed = txn.Commit();
          if (!committed.ok()) continue;  // commit-time conflict
          EXPECT_GE(graph.ReadEpoch(), *committed);
          break;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

// Multi-shard transactions write a value pair spanning two shards while
// readers assert both-or-neither visibility. This drives the coordinator
// path: one EpochDomain epoch acquired for several shards, CommitAt fan
// out, WaitVisible, and the up-front read-pin of write sessions.
TEST(TsanStress, ShardedMultiShardCommitAtomicity) {
  ShardOptions options;
  options.shards = 3;
  options.graph.region_reserve = size_t{1} << 29;
  options.graph.max_vertices = 1 << 15;
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;

  ShardedStore store(options);
  // One cross-shard pair per writer.
  std::vector<std::pair<vertex_t, vertex_t>> pairs(kWriters);
  for (auto& [a, b] : pairs) {
    a = store.AddNode("0");
    do {
      b = store.AddNode("0");
    } while (store.ShardOf(b) == store.ShardOf(a));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto read = store.BeginReadTxn();
        for (const auto& [a, b] : pairs) {
          StatusOr<std::string> va = read->GetNode(a);
          StatusOr<std::string> vb = read->GetNode(b);
          ASSERT_TRUE(va.ok());
          ASSERT_TRUE(vb.ok());
          if (*va != *vb) torn.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 1; i <= kTxnsPerWriter; ++i) {
        auto txn = store.BeginTxn();
        std::string value = std::to_string(i);
        ASSERT_EQ(txn->UpdateNode(pairs[static_cast<size_t>(w)].first, value),
                  Status::kOk);
        ASSERT_EQ(txn->UpdateNode(pairs[static_cast<size_t>(w)].second, value),
                  Status::kOk);
        ASSERT_TRUE(txn->Commit().ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);

  auto read = store.BeginReadTxn();
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(*read->GetNode(a), std::to_string(kTxnsPerWriter));
    EXPECT_EQ(*read->GetNode(b), std::to_string(kTxnsPerWriter));
  }
}

}  // namespace
}  // namespace livegraph
