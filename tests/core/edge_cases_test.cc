// Boundary conditions and failure-injection paths not covered by the main
// behavioural suites.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>

#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

GraphOptions TestOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  options.enable_compaction = false;
  return options;
}

TEST(EdgeCases, EmptyGraphReads) {
  Graph graph(TestOptions());
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_FALSE(read.GetVertex(0).has_value());
  EXPECT_FALSE(read.GetVertex(-1).has_value());
  EXPECT_FALSE(read.GetEdge(0, 0, 0).has_value());
  EXPECT_EQ(read.CountEdges(0, 0), 0u);
  EXPECT_FALSE(read.GetEdges(0, 0).Valid());
  EXPECT_EQ(graph.VertexCount(), 0);
}

TEST(EdgeCases, NegativeVertexIdsRejected) {
  Graph graph(TestOptions());
  auto txn = graph.BeginTransaction();
  EXPECT_EQ(txn.PutVertex(-1, "x"), Status::kNotFound);
  EXPECT_EQ(txn.AddEdge(-1, 0, 0), Status::kNotFound);
  EXPECT_EQ(txn.DeleteEdge(-7, 0, 0), Status::kNotFound);
  EXPECT_FALSE(txn.GetVertex(-3).has_value());
}

TEST(EdgeCases, MaxLabelValue) {
  Graph graph(TestOptions());
  constexpr label_t kMax = std::numeric_limits<label_t>::max();
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, kMax, a, "max-label"), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(a, kMax, a).value(), "max-label");
  EXPECT_EQ(read.CountEdges(a, kMax - 1), 0u);
}

TEST(EdgeCases, RepeatedUpsertSameTransaction) {
  Graph graph(TestOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  vertex_t b = txn.AddVertex();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(txn.AddEdge(a, 0, b, "v" + std::to_string(i)), Status::kOk);
  }
  EXPECT_EQ(txn.CountEdges(a, 0), 1u);
  EXPECT_EQ(txn.GetEdge(a, 0, b).value(), "v99");
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(a, 0), 1u);
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "v99");
}

TEST(EdgeCases, AddDeleteAddSameTransaction) {
  Graph graph(TestOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  vertex_t b = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, 0, b, "1"), Status::kOk);
  ASSERT_EQ(txn.DeleteEdge(a, 0, b), Status::kOk);
  ASSERT_EQ(txn.AddEdge(a, 0, b, "2"), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), "2");
  EXPECT_EQ(read.CountEdges(a, 0), 1u);
}

TEST(EdgeCases, CommitTwiceAndUseAfterCommit) {
  Graph graph(TestOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex("x");
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_EQ(txn.Commit(), Status::kNotActive);
  EXPECT_EQ(txn.PutVertex(a, "y"), Status::kNotActive);
  EXPECT_EQ(txn.AddEdge(a, 0, a), Status::kNotActive);
  EXPECT_EQ(txn.AddVertex("z"), kNullVertex);
  txn.Abort();  // no-op after commit
}

TEST(EdgeCases, ReadOnlyTransactionOutlivesManyWrites) {
  Graph graph(TestOptions());
  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex("hub-v0");
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto ancient = graph.BeginReadOnlyTransaction();
  for (int i = 0; i < 2000; ++i) {
    auto txn = graph.BeginTransaction();
    ASSERT_EQ(txn.AddEdge(hub, 0, txn.AddVertex(), "payload-payload"),
              Status::kOk);
    if (i % 100 == 0) {
      ASSERT_EQ(txn.PutVertex(hub, "hub-v" + std::to_string(i)), Status::kOk);
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // The ancient snapshot survived hundreds of TEL upgrades and vertex
  // versions.
  EXPECT_EQ(ancient.GetVertex(hub).value(), "hub-v0");
  EXPECT_EQ(ancient.CountEdges(hub, 0), 0u);
}

TEST(EdgeCases, WalDisabledGraphStillTransactional) {
  GraphOptions options = TestOptions();
  options.wal_path.clear();
  Graph graph(options);
  auto t1 = graph.BeginTransaction();
  auto t2 = graph.BeginTransaction();
  vertex_t a = t1.AddVertex("a");
  ASSERT_EQ(t1.Commit(), Status::kOk);
  // t2's snapshot predates the commit.
  EXPECT_FALSE(t2.GetVertex(a).has_value());
}

TEST(EdgeCases, InterleavedLabelsStressLabelIndexGrowth) {
  Graph graph(TestOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  // 64 labels forces several label-index block growths in one transaction.
  for (label_t l = 0; l < 64; ++l) {
    ASSERT_EQ(txn.AddEdge(a, l, txn.AddVertex(), std::to_string(l)),
              Status::kOk);
  }
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  for (label_t l = 0; l < 64; ++l) {
    ASSERT_EQ(read.CountEdges(a, l), 1u) << "label " << l;
    auto it = read.GetEdges(a, l);
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(std::string(it.Properties()), std::to_string(l));
  }
}

TEST(EdgeCases, PropertySizeSpectrum) {
  Graph graph(TestOptions());
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex();
  std::vector<size_t> sizes = {0, 1, 7, 8, 63, 64, 65, 1000, 4096, 100'000};
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::string payload(sizes[i], static_cast<char>('A' + i));
    ASSERT_EQ(txn.AddEdge(a, 0, static_cast<vertex_t>(i + 100), payload),
              Status::kOk);
  }
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  for (size_t i = 0; i < sizes.size(); ++i) {
    auto props = read.GetEdge(a, 0, static_cast<vertex_t>(i + 100));
    ASSERT_TRUE(props.has_value());
    EXPECT_EQ(props->size(), sizes[i]);
    if (!props->empty()) {
      EXPECT_EQ(props->front(), static_cast<char>('A' + i));
      EXPECT_EQ(props->back(), static_cast<char>('A' + i));
    }
  }
}

TEST(EdgeCases, BinaryPropertiesWithNulBytes) {
  Graph graph(TestOptions());
  std::string binary("\x00\x01\xFF\x00payload\x00", 12);
  auto txn = graph.BeginTransaction();
  vertex_t a = txn.AddVertex(binary);
  vertex_t b = txn.AddVertex();
  ASSERT_EQ(txn.AddEdge(a, 0, b, binary), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetVertex(a).value(), binary);
  EXPECT_EQ(read.GetEdge(a, 0, b).value(), binary);
}

TEST(EdgeCases, ConflictedTransactionRetrySucceeds) {
  // The paper's abort-and-restart pattern: after a conflict, a fresh
  // transaction (fresh snapshot) must succeed.
  Graph graph(TestOptions());
  vertex_t v, d;
  {
    auto txn = graph.BeginTransaction();
    v = txn.AddVertex();
    d = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto loser = graph.BeginTransaction();
  {
    auto winner = graph.BeginTransaction();
    ASSERT_EQ(winner.AddEdge(v, 0, d, "winner"), Status::kOk);
    ASSERT_EQ(winner.Commit(), Status::kOk);
  }
  ASSERT_EQ(loser.AddEdge(v, 0, d, "loser"), Status::kConflict);
  auto retry = graph.BeginTransaction();
  ASSERT_EQ(retry.AddEdge(v, 0, d, "retry"), Status::kOk);
  ASSERT_EQ(retry.Commit(), Status::kOk);
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.GetEdge(v, 0, d).value(), "retry");
}

TEST(EdgeCases, ManyShortLivedTransactionsRecycleSlots) {
  GraphOptions options = TestOptions();
  options.max_workers = 8;  // tiny slot pool
  Graph graph(options);
  // Far more transactions than slots, sequentially and in parallel.
  for (int i = 0; i < 100; ++i) {
    auto read = graph.BeginReadOnlyTransaction();
    (void)read.GetVertex(0);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto txn = graph.BeginTransaction();
        txn.AddVertex("x");
        ASSERT_EQ(txn.Commit(), Status::kOk);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(graph.VertexCount(), 2000);
}

TEST(EdgeCases, TimeoutStatusNameMapping) {
  EXPECT_STREQ(StatusName(Status::kOk), "Ok");
  EXPECT_STREQ(StatusName(Status::kConflict), "Conflict");
  EXPECT_STREQ(StatusName(Status::kTimeout), "Timeout");
  EXPECT_STREQ(StatusName(Status::kNotFound), "NotFound");
  EXPECT_STREQ(StatusName(Status::kNotActive), "NotActive");
}

}  // namespace
}  // namespace livegraph
