// TEL layout and block-level behaviour (paper §3, Figure 3).
#include <gtest/gtest.h>

#include <cstring>

#include "core/blocks.h"
#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {
namespace {

TEST(TelLayout, EntryAndHeaderSizes) {
  // 32-byte header + one 32-byte entry fit the minimal 64-byte block: a
  // fresh vertex's adjacency list occupies one cache line (§3).
  EXPECT_EQ(sizeof(TelHeader), 32u);
  EXPECT_EQ(sizeof(EdgeEntry), 32u);
  TelGeometry g = TelGeometry::For(6, /*enable_bloom=*/true);
  EXPECT_EQ(g.block_size, 64u);
  EXPECT_EQ(g.bloom_bytes, 0u);  // too small for a blocked filter
  EXPECT_EQ(g.prop_start, 32u);
}

TEST(TelLayout, BloomSizedAtOneSixteenth) {
  // Blocks >= 1 KiB embed a filter of block/16 bytes (§4).
  TelGeometry g10 = TelGeometry::For(10, true);
  EXPECT_EQ(g10.bloom_bytes, 64u);
  TelGeometry g16 = TelGeometry::For(16, true);
  EXPECT_EQ(g16.bloom_bytes, 4096u);
  TelGeometry g16_off = TelGeometry::For(16, false);
  EXPECT_EQ(g16_off.bloom_bytes, 0u);
}

TEST(TelLayout, EntriesGrowBackwardsFromBlockEnd) {
  alignas(64) uint8_t buffer[256] = {};
  TelBlock block(buffer, 8, false);
  EdgeEntry* oldest = block.Entry(0);
  EdgeEntry* newer = block.Entry(1);
  EXPECT_EQ(reinterpret_cast<uint8_t*>(oldest) + sizeof(EdgeEntry),
            buffer + 256);
  EXPECT_LT(reinterpret_cast<uint8_t*>(newer),
            reinterpret_cast<uint8_t*>(oldest));
}

TEST(TelLayout, FitsAccountsForBothRegions) {
  TelBlock block(nullptr, 6, true);  // 64 B: header 32 + one entry 32
  EXPECT_TRUE(block.Fits(1, 0));
  EXPECT_FALSE(block.Fits(1, 1));  // any property overflows
  EXPECT_FALSE(block.Fits(2, 0));
}

TEST(TelVisibility, DoubleTimestampRules) {
  EdgeEntry entry;
  entry.dst = 7;
  entry.creation_ts.store(5);
  entry.invalidation_ts.store(kNullTimestamp);
  // Committed live entry: visible iff TRE >= creation.
  EXPECT_FALSE(entry.VisibleTo(4, 0));
  EXPECT_TRUE(entry.VisibleTo(5, 0));
  EXPECT_TRUE(entry.VisibleTo(100, 0));

  // Committed invalidation at 10: visible in [5, 10).
  entry.invalidation_ts.store(10);
  EXPECT_TRUE(entry.VisibleTo(9, 0));
  EXPECT_FALSE(entry.VisibleTo(10, 0));

  // Pending invalidation (-TID of another transaction) does not hide the
  // entry from readers (Figure 4a, R3).
  entry.invalidation_ts.store(-42);
  EXPECT_TRUE(entry.VisibleTo(9, 0));
  EXPECT_TRUE(entry.VisibleTo(100, 7));
  // ...but hides it from the invalidating transaction itself.
  EXPECT_FALSE(entry.VisibleTo(100, 42));

  // Uncommitted entry (-TID creation) visible only to its own transaction.
  entry.creation_ts.store(-42);
  entry.invalidation_ts.store(kNullTimestamp);
  EXPECT_FALSE(entry.VisibleTo(100, 0));
  EXPECT_FALSE(entry.VisibleTo(100, 7));
  EXPECT_TRUE(entry.VisibleTo(0, 42));
  // Own entry already self-invalidated: invisible even to the owner.
  entry.invalidation_ts.store(-42);
  EXPECT_FALSE(entry.VisibleTo(0, 42));
}

TEST(TelUpgrade, PreservesHistoryAcrossResizes) {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 16;
  options.enable_compaction = false;
  Graph graph(options);

  vertex_t hub;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Insert in many small transactions, snapshotting along the way; each
  // snapshot must keep seeing its own prefix even as the TEL is upgraded
  // through several block sizes.
  std::vector<std::pair<ReadTransaction, size_t>> snapshots;
  for (int i = 0; i < 300; ++i) {
    {
      auto txn = graph.BeginTransaction();
      vertex_t d = txn.AddVertex();
      ASSERT_EQ(txn.AddEdge(hub, 0, d, "payload-bytes"), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    if (i % 50 == 0) {
      auto snapshot = graph.BeginReadOnlyTransaction();
      size_t count = snapshot.CountEdges(hub, 0);
      snapshots.emplace_back(std::move(snapshot), count);
    }
  }
  for (auto& [snapshot, expected] : snapshots) {
    EXPECT_EQ(snapshot.CountEdges(hub, 0), expected)
        << "snapshot drifted after TEL upgrades";
  }
  auto fresh = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(fresh.CountEdges(hub, 0), 300u);
}

TEST(TelUpgrade, AbortAfterUpgradeRestoresOriginalBlock) {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 16;
  options.enable_compaction = false;
  Graph graph(options);

  vertex_t hub, first;
  {
    auto txn = graph.BeginTransaction();
    hub = txn.AddVertex();
    first = txn.AddVertex();
    ASSERT_EQ(txn.AddEdge(hub, 0, first, "committed"), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    // Force several upgrades, then abort.
    auto txn = graph.BeginTransaction();
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(txn.AddEdge(hub, 0, txn.AddVertex(), "bulk-payload"),
                Status::kOk);
    }
    ASSERT_EQ(txn.DeleteEdge(hub, 0, first), Status::kOk);
    txn.Abort();
  }
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(hub, 0), 1u);
  EXPECT_EQ(read.GetEdge(hub, 0, first).value(), "committed");
}

// Property sweep: random interleavings of inserts/updates/deletes against a
// reference map, across block-size-forcing payload sizes.
struct TelSweepParam {
  int operations;
  size_t payload;
  bool bloom;
};

class TelSweepTest : public ::testing::TestWithParam<TelSweepParam> {};

TEST_P(TelSweepTest, MatchesReferenceAdjacencySet) {
  const TelSweepParam param = GetParam();
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 16;
  options.enable_compaction = false;
  options.enable_bloom_filters = param.bloom;
  Graph graph(options);

  vertex_t src;
  {
    auto txn = graph.BeginTransaction();
    src = txn.AddVertex();
    for (int i = 0; i < 64; ++i) txn.AddVertex();
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::map<vertex_t, std::string> reference;
  uint64_t state = 88172645463325252ull ^ param.operations ^ param.payload;
  auto next_random = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < param.operations; ++i) {
    vertex_t dst = 1 + static_cast<vertex_t>(next_random() % 64);
    auto txn = graph.BeginTransaction();
    if (next_random() % 4 == 0 && !reference.empty()) {
      Status st = txn.DeleteEdge(src, 0, dst);
      if (reference.count(dst) > 0) {
        EXPECT_EQ(st, Status::kOk);
        reference.erase(dst);
      } else {
        EXPECT_EQ(st, Status::kNotFound);
      }
    } else {
      std::string payload(param.payload, static_cast<char>('a' + i % 26));
      ASSERT_EQ(txn.AddEdge(src, 0, dst, payload), Status::kOk);
      reference[dst] = payload;
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_EQ(read.CountEdges(src, 0), reference.size());
  for (const auto& [dst, payload] : reference) {
    auto props = read.GetEdge(src, 0, dst);
    ASSERT_TRUE(props.has_value()) << "missing dst " << dst;
    EXPECT_EQ(*props, payload);
  }
  // And nothing extra.
  for (auto it = read.GetEdges(src, 0); it.Valid(); it.Next()) {
    EXPECT_EQ(reference.count(it.DstId()), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TelSweepTest,
    ::testing::Values(TelSweepParam{50, 0, true}, TelSweepParam{50, 0, false},
                      TelSweepParam{300, 8, true},
                      TelSweepParam{300, 100, true},
                      TelSweepParam{300, 100, false},
                      TelSweepParam{1000, 24, true},
                      TelSweepParam{2000, 3, true}));

}  // namespace
}  // namespace livegraph
