// The debug invariant checker (util/invariant.h, util/lock_rank.h) must
// abort loudly — in DCHECK builds — on exactly the misuse classes it
// guards: visibility-order violations in the epoch domain, read-pin
// lifetime bugs, and lock-rank inversions. Every death test here drives a
// thread-free object straight into the guarded state; a build with the
// checker compiled out (Release) skips them.
#include <gtest/gtest.h>

#include "core/epoch_domain.h"
#include "util/invariant.h"
#include "util/lock_rank.h"

namespace livegraph {
namespace {

#if !defined(LIVEGRAPH_DCHECK_ENABLED)

TEST(InvariantChecker, DisabledInThisBuild) {
  GTEST_SKIP() << "LIVEGRAPH_DCHECK disabled; invariant checker compiled out";
}

#else

using InvariantCheckerDeathTest = ::testing::Test;

// The happy path: a full issue -> apply -> wait -> pin -> unpin cycle runs
// with the checker armed and no aborts.
TEST(InvariantChecker, CleanLifecyclePassesAllChecks) {
  EpochDomain domain(64);
  timestamp_t e1 = domain.Acquire(2);
  timestamp_t e2 = domain.Acquire(1);
  EXPECT_EQ(e2, e1 + 1);
  domain.MarkApplied(e1);
  domain.MarkApplied(e1);  // second participant publishes
  domain.MarkApplied(e2);
  domain.WaitVisible(e2);
  EXPECT_EQ(domain.visible(), e2);
  EpochDomain::ReadPin pin = domain.PinRead();
  EXPECT_EQ(pin.epoch, e2);
  domain.Unpin(pin);

  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kCompactionPass);
  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kVertexLock);
  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kWalAppend);
  SUCCEED();
}

// Applying an epoch a second time after it became visible would let the
// frontier publish a group twice (corrupting the visibility order).
TEST(InvariantCheckerDeathTest, DoubleMarkAppliedAborts) {
  ASSERT_DEATH(
      {
        EpochDomain domain(64);
        timestamp_t e = domain.Acquire(1);
        domain.MarkApplied(e);
        domain.MarkApplied(e);  // already visible
      },
      "double apply");
}

// MarkApplied for an epoch the domain never issued: the countdown being
// decremented belongs to nobody.
TEST(InvariantCheckerDeathTest, MarkAppliedForUnissuedEpochAborts) {
  ASSERT_DEATH(
      {
        EpochDomain domain(64);
        domain.MarkApplied(7);  // nothing issued yet
      },
      "never issued");
}

// Waiting past the issued frontier would sleep forever — no participant
// exists to advance the frontier that far.
TEST(InvariantCheckerDeathTest, WaitVisibleBeyondIssuedAborts) {
  ASSERT_DEATH(
      {
        EpochDomain domain(64);
        timestamp_t e = domain.Acquire(1);
        domain.MarkApplied(e);
        domain.WaitVisible(e + 1);  // never issued
      },
      "would hang");
}

// Unpinning twice frees a slot another session may already have claimed.
TEST(InvariantCheckerDeathTest, DoubleUnpinAborts) {
  ASSERT_DEATH(
      {
        EpochDomain domain(64);
        EpochDomain::ReadPin pin = domain.PinRead();
        domain.Unpin(pin);
        domain.Unpin(pin);
      },
      "double unpin");
}

// Acquiring a LOWER rank while holding a higher one is the inversion the
// table exists to catch (e.g. taking a vertex lock inside the WAL append).
TEST(InvariantCheckerDeathTest, LockRankInversionAborts) {
  ASSERT_DEATH(
      {
        LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kWalAppend);
        LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kVertexLock);
      },
      "lock-order inversion");
}

// Same-rank reacquisition is allowed only for kVertexLock (transactions
// hold several vertex locks at once by design); any other rank is a
// self-deadlock pattern.
TEST(InvariantCheckerDeathTest, SameRankReacquireAbortsExceptVertexLock) {
  {
    LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kVertexLock);
    LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kVertexLock);  // legal
  }
  ASSERT_DEATH(
      {
        LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kWalAppend);
        LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kWalAppend);
      },
      "lock-order inversion");
}

// Releasing a rank that is not held means acquire/release bookkeeping got
// out of sync somewhere.
TEST(InvariantCheckerDeathTest, ReleaseOfUnheldRankAborts) {
  ASSERT_DEATH({ LIVEGRAPH_LOCK_RANK_RELEASE(LockRank::kDirtySet); },
               "does not hold");
}

#endif  // LIVEGRAPH_DCHECK_ENABLED

}  // namespace
}  // namespace livegraph
