#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "baselines/csr.h"
#include "baselines/livegraph_store.h"
#include "workload/kronecker.h"
#include "workload/linkbench.h"

namespace livegraph {
namespace {

TEST(Kronecker, EdgeCountAndRange) {
  KroneckerOptions options;
  options.scale = 12;
  options.average_degree = 4;
  auto edges = GenerateKronecker(options);
  EXPECT_EQ(edges.size(), size_t{1} << 14);
  for (const auto& [src, dst] : edges) {
    ASSERT_GE(src, 0);
    ASSERT_LT(src, vertex_t{1} << 12);
    ASSERT_GE(dst, 0);
    ASSERT_LT(dst, vertex_t{1} << 12);
  }
}

TEST(Kronecker, Deterministic) {
  KroneckerOptions options;
  options.scale = 10;
  auto a = GenerateKronecker(options);
  auto b = GenerateKronecker(options);
  EXPECT_EQ(a, b);
  options.seed++;
  auto c = GenerateKronecker(options);
  EXPECT_NE(a, c);
}

TEST(Kronecker, PowerLawSkew) {
  KroneckerOptions options;
  options.scale = 14;
  auto edges = GenerateKronecker(options);
  std::map<vertex_t, int64_t> degree;
  for (const auto& [src, dst] : edges) degree[src]++;
  // Top 1% of vertices should hold a disproportionate share of edges.
  std::vector<int64_t> degrees;
  for (auto& [v, d] : degree) degrees.push_back(d);
  std::sort(degrees.rbegin(), degrees.rend());
  size_t top = degrees.size() / 100 + 1;
  int64_t top_sum = std::accumulate(degrees.begin(), degrees.begin() + top, int64_t{0});
  int64_t total = std::accumulate(degrees.begin(), degrees.end(), int64_t{0});
  EXPECT_GT(top_sum * 5, total)
      << "top 1% should account for >20% of edges under R-MAT skew";
}

TEST(Csr, FromEdgesRoundTrip) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {
      {0, 1}, {0, 2}, {2, 0}, {2, 1}, {2, 3}, {3, 3}};
  Csr csr = Csr::FromEdges(4, edges);
  EXPECT_EQ(csr.vertex_count(), 4);
  EXPECT_EQ(csr.edge_count(), 6);
  EXPECT_EQ(csr.Degree(0), 2);
  EXPECT_EQ(csr.Degree(1), 0);
  EXPECT_EQ(csr.Degree(2), 3);
  EXPECT_EQ(csr.Degree(3), 1);
  auto n2 = csr.Neighbors(2);
  EXPECT_EQ(std::vector<vertex_t>(n2.begin(), n2.end()),
            (std::vector<vertex_t>{0, 1, 3}));
}

TEST(LinkBenchMixes, SumToOneAndMatchPaperReadRatios) {
  auto sum = [](const LinkBenchMix& mix) {
    double s = 0;
    for (double v : mix) s += v;
    return s;
  };
  EXPECT_NEAR(sum(DfltMix()), 1.0, 1e-9);
  EXPECT_NEAR(sum(TaoMix()), 1.0, 1e-9);
  // DFLT: 69% reads (GET_NODE + COUNT + MULTIGET + GET_LINKS_LIST).
  auto dflt = DfltMix();
  double dflt_reads = dflt[3] + dflt[7] + dflt[8] + dflt[9];
  EXPECT_NEAR(dflt_reads, 0.69, 0.005);
  // TAO: 99.8% reads.
  auto tao = TaoMix();
  double tao_reads = tao[3] + tao[7] + tao[8] + tao[9];
  EXPECT_NEAR(tao_reads, 0.998, 0.001);
}

TEST(LinkBenchMixes, WriteRatioInterpolation) {
  for (double w : {0.25, 0.5, 0.75, 1.0}) {
    auto mix = MixWithWriteRatio(w);
    double writes = mix[0] + mix[1] + mix[2] + mix[4] + mix[5] + mix[6];
    EXPECT_NEAR(writes, w, 1e-9) << "target " << w;
  }
}

TEST(Driver, CountsFailuresSeparatelyFromThroughput) {
  DriverOptions options;
  options.clients = 4;
  options.ops_per_client = 100;
  DriverResult result =
      RunClients(options, [](int /*client*/, uint64_t i) -> OpResult {
        return i % 4 == 0 ? FailedOp("flaky") : OpResult("flaky");
      });
  EXPECT_EQ(result.failures, 100u);
  EXPECT_EQ(result.operations, 300u);
  EXPECT_NEAR(result.failure_rate(), 0.25, 1e-9);
  // Latency is recorded for failed attempts too — the client paid it.
  EXPECT_EQ(result.overall.count(), 400u);
}

TEST(LinkBench, EndToEndSmokeOnLiveGraph) {
  GraphOptions graph_options;
  graph_options.region_reserve = size_t{1} << 31;
  graph_options.max_vertices = 1 << 20;
  LiveGraphStore store(graph_options);
  LinkBenchConfig config;
  config.scale = 10;  // 1K vertices, ~4K edges
  config.clients = 4;
  config.ops_per_client = 2000;
  vertex_t n = LoadLinkBenchGraph(&store, config);
  EXPECT_EQ(n, vertex_t{1} << 10);
  DriverResult result = RunLinkBench(&store, config, n);
  EXPECT_EQ(result.operations + result.failures, 8000u);
  EXPECT_LE(result.failure_rate(), 0.01)
      << "an embedded store at this scale should serve nearly every request";
  EXPECT_GT(result.throughput(), 0.0);
  EXPECT_GT(result.overall.count(), 0u);
  // All ten op classes should appear at this op count.
  EXPECT_GE(result.per_class.size(), 8u);
  // Latency sanity: p999 >= p99 >= mean ordering of the histogram.
  EXPECT_GE(result.overall.PercentileNanos(0.999),
            result.overall.PercentileNanos(0.99));
}

}  // namespace
}  // namespace livegraph
