// Crash-recovery matrix for the sharded engine (docs/SHARDING.md
// "Recovery"): checkpoint + per-shard WAL tail replay, atomicity of
// multi-shard transactions whose pieces were only partially durable when
// the process died, WAL truncation to the manifest-consistent state, and
// snapshot consistency of the recovered store under fresh concurrent load.
//
// Crash points are simulated at the WAL level, which is exact: the persist
// phase makes a commit's record durable before Commit() returns and the
// apply phase touches only memory, so
//   * "killed between persist and apply"  == the record is fully on disk
//     (a graceful close leaves byte-identical logs), and
//   * "killed mid multi-shard commit"     == some shards hold the
//     transaction's piece and others do not — reproduced here by
//     rewriting one shard's WAL without its piece.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_store.h"
#include "storage/wal.h"

namespace livegraph {
namespace {

namespace fs = std::filesystem;

constexpr int kShards = 4;

class ShardedRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("lg_shard_recovery_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ShardOptions DurableOptions(int shards = kShards) {
    ShardOptions options;
    options.shards = shards;
    options.dir = dir_;
    options.graph.region_reserve = size_t{1} << 30;
    options.graph.max_vertices = 1 << 18;
    options.graph.fsync_wal = false;  // tmpfs: logical replay, not fsync
    return options;
  }

  std::string ShardWal(int s) const {
    return dir_ + "/shard" + std::to_string(s) + "/wal";
  }

  /// Rewrites shard `s`'s WAL dropping record `victim` (0-based index in
  /// log order) — the surgical "this shard's fsync never happened" crash.
  void DropWalRecord(int s, size_t victim) {
    struct Rec {
      timestamp_t epoch;
      uint32_t participants;
      std::string payload;
    };
    std::vector<Rec> records;
    {
      Wal::Reader reader(ShardWal(s));
      Rec r;
      while (reader.Next(&r.epoch, &r.participants, &r.payload)) {
        records.push_back(r);
      }
    }
    ASSERT_LT(victim, records.size());
    records.erase(records.begin() + static_cast<ptrdiff_t>(victim));
    fs::remove(ShardWal(s));
    Wal wal({ShardWal(s), /*fsync=*/false});
    for (const Rec& r : records) {
      wal.AppendBatch({Wal::Record{r.epoch, r.participants, r.payload}});
    }
  }

  /// Index (in log order) and epoch of the last multi-shard piece in
  /// shard `s`'s WAL; returns false if the shard holds none.
  bool LastMultiShardPiece(int s, size_t* index, timestamp_t* epoch) {
    Wal::Reader reader(ShardWal(s));
    timestamp_t e = 0;
    uint32_t participants = 0;
    std::string payload;
    bool found = false;
    size_t i = 0;
    while (reader.Next(&e, &participants, &payload)) {
      if (participants > 1) {
        *index = i;
        *epoch = e;
        found = true;
      }
      ++i;
    }
    return found;
  }

  std::string dir_;
};

// Kill after persist, before/while applying: every committed transaction's
// record is fully durable, so recovery must restore all of them — the
// single-shard fast path and the coordinated multi-shard path alike — and
// the epoch domain must resume past every durable epoch.
TEST_F(ShardedRecoveryTest, ReplaysBothCommitPathsAfterKill) {
  vertex_t a, b, c;
  timestamp_t last_epoch = 0;
  {
    ShardedStore store(DurableOptions());
    a = store.AddNode("a");
    b = store.AddNode("b");
    c = store.AddNode("c");
    ASSERT_NE(store.ShardOf(a), store.ShardOf(b));
    // Multi-shard commit.
    {
      auto txn = store.BeginTxn();
      ASSERT_EQ(txn->UpdateNode(a, "a-multi"), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "b-multi"), Status::kOk);
      ASSERT_TRUE(txn->AddLink(a, 0, b, "ab").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    // Single-shard fast-path commits.
    ASSERT_EQ(store.UpdateNode(c, "c-fast"), Status::kOk);
    ASSERT_TRUE(store.AddLink(b, 1, c, "bc").ok());
    auto read = store.BeginShardedReadTxn();
    last_epoch = read->read_epoch();
  }  // "crash": WAL records of every returned commit are on disk

  auto store = ShardedStore::Recover(DurableOptions());
  ASSERT_NE(store, nullptr);
  auto read = store->BeginShardedReadTxn();
  EXPECT_EQ(*read->GetNode(a), "a-multi");
  EXPECT_EQ(*read->GetNode(b), "b-multi");
  EXPECT_EQ(*read->GetNode(c), "c-fast");
  EXPECT_EQ(*read->GetLink(a, 0, b), "ab");
  EXPECT_EQ(*read->GetLink(b, 1, c), "bc");
  EXPECT_EQ(store->VertexCount(), 3);

  // The epoch domain resumed past every durable epoch: new commits land
  // strictly above anything the pre-crash store handed out.
  auto txn = store->BeginTxn();
  ASSERT_EQ(txn->UpdateNode(a, "post"), Status::kOk);
  StatusOr<timestamp_t> epoch = txn->Commit();
  ASSERT_TRUE(epoch.ok());
  EXPECT_GT(*epoch, last_epoch);
}

// Kill mid multi-shard commit: one shard's piece reached its WAL, the
// other's fsync never happened. Recovery must drop the transaction on
// EVERY shard (no torn state), while keeping unrelated commits — including
// ones logged after the torn piece on the surviving shard.
TEST_F(ShardedRecoveryTest, TornMultiShardCommitDroppedAtomically) {
  vertex_t a, b;
  {
    ShardedStore store(DurableOptions());
    a = store.AddNode("a");
    b = store.AddNode("b");
    ASSERT_NE(store.ShardOf(a), store.ShardOf(b));
    // The victim: a multi-shard transaction spanning a's and b's shards.
    {
      auto txn = store.BeginTxn();
      ASSERT_EQ(txn->UpdateNode(a, "torn-a"), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "torn-b"), Status::kOk);
      ASSERT_TRUE(txn->Commit().ok());
    }
    // A later single-shard commit on a's shard, behind the torn piece in
    // the same log.
    ASSERT_EQ(store.UpdateNode(a, "after-torn"), Status::kOk);
  }

  // Simulate the crash: b's shard never fsynced its piece.
  int shard_b = -1;
  {
    ShardOptions probe = DurableOptions();
    shard_b = shard_id::ShardOf(b, probe.shards);
  }
  size_t victim = 0;
  timestamp_t torn_epoch = 0;
  ASSERT_TRUE(LastMultiShardPiece(shard_b, &victim, &torn_epoch));
  DropWalRecord(shard_b, victim);

  auto store = ShardedStore::Recover(DurableOptions());
  auto read = store->BeginShardedReadTxn();
  // All-or-nothing: the torn transaction is gone from BOTH shards...
  EXPECT_EQ(*read->GetNode(b), "b") << "torn piece must not survive";
  StatusOr<std::string> va = read->GetNode(a);
  ASSERT_TRUE(va.ok());
  EXPECT_NE(*va, "torn-a") << "torn piece must not survive on any shard";
  // ...while the independent commit logged after it is preserved.
  EXPECT_EQ(*va, "after-torn");
}

// Checkpoint + WAL tail: commits before the manifest come back from the
// per-shard checkpoint files, commits after it from the WAL tails, and a
// multi-shard transaction straddling the boundary stays atomic.
TEST_F(ShardedRecoveryTest, CheckpointPlusWalTail) {
  vertex_t a, b;
  timestamp_t checkpoint_epoch = 0;
  {
    ShardedStore store(DurableOptions());
    a = store.AddNode("a");
    b = store.AddNode("b");
    ASSERT_NE(store.ShardOf(a), store.ShardOf(b));
    {
      auto txn = store.BeginTxn();
      ASSERT_EQ(txn->UpdateNode(a, "a-pre"), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "b-pre"), Status::kOk);
      ASSERT_TRUE(txn->Commit().ok());
    }
    checkpoint_epoch = store.Checkpoint(/*threads=*/2);
    EXPECT_GT(checkpoint_epoch, 0);
    EXPECT_TRUE(fs::exists(dir_ + "/MANIFEST"));
    {
      auto txn = store.BeginTxn();
      ASSERT_EQ(txn->UpdateNode(a, "a-post"), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "b-post"), Status::kOk);
      ASSERT_TRUE(txn->AddLink(b, 0, a, "tail").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }

  auto store = ShardedStore::Recover(DurableOptions());
  auto read = store->BeginShardedReadTxn();
  EXPECT_EQ(*read->GetNode(a), "a-post");
  EXPECT_EQ(*read->GetNode(b), "b-post");
  EXPECT_EQ(*read->GetLink(b, 0, a), "tail");
  EXPECT_GT(read->read_epoch(), checkpoint_epoch);
}

// Recovery seals its result: the WALs are truncated to the fresh manifest
// (so a dropped torn suffix can never resurface) and recovering again —
// even repeatedly — reproduces the identical state.
TEST_F(ShardedRecoveryTest, RecoveryTruncatesWalsAndIsIdempotent) {
  vertex_t a, b;
  {
    ShardedStore store(DurableOptions());
    a = store.AddNode("a");
    b = store.AddNode("b");
    auto txn = store.BeginTxn();
    ASSERT_EQ(txn->UpdateNode(a, "a1"), Status::kOk);
    ASSERT_EQ(txn->UpdateNode(b, "b1"), Status::kOk);
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto store = ShardedStore::Recover(DurableOptions());
    EXPECT_TRUE(fs::exists(dir_ + "/MANIFEST"));
    for (int s = 0; s < kShards; ++s) {
      EXPECT_EQ(fs::file_size(ShardWal(s)), 0u)
          << "shard " << s << " WAL not truncated after recovery";
    }
    // New durable work on the recovered store.
    ASSERT_EQ(store->UpdateNode(a, "a2"), Status::kOk);
  }
  {
    auto store = ShardedStore::Recover(DurableOptions());
    EXPECT_EQ(*store->GetNode(a), "a2");
    EXPECT_EQ(*store->GetNode(b), "b1");
  }
  // Third recovery with no intervening writes: still identical.
  auto store = ShardedStore::Recover(DurableOptions());
  EXPECT_EQ(*store->GetNode(a), "a2");
  EXPECT_EQ(*store->GetNode(b), "b1");
  EXPECT_EQ(store->VertexCount(), 2);
}

// The recovered store is a first-class engine: under concurrent
// multi-shard writers and snapshot readers it upholds the same
// no-torn-cross-shard-snapshots contract as a freshly built store (the
// NoTornCrossShardSnapshots shape from sharded_store_test.cc, run on a
// store that went through Recover()).
TEST_F(ShardedRecoveryTest, RecoveredStoreServesConsistentSnapshots) {
  constexpr int kPairs = 3;
  constexpr int kWritesPerPair = 60;
  std::vector<std::pair<vertex_t, vertex_t>> pairs;
  {
    ShardedStore store(DurableOptions());
    for (int k = 0; k < kPairs; ++k) {
      vertex_t a = store.AddNode("0");
      vertex_t b = store.AddNode("0");
      ASSERT_NE(store.ShardOf(a), store.ShardOf(b));
      pairs.emplace_back(a, b);
    }
  }
  auto recovered = ShardedStore::Recover(DurableOptions());
  ShardedStore& store = *recovered;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> snapshots_checked{0};
  std::vector<std::thread> writers;
  for (int k = 0; k < kPairs; ++k) {
    writers.emplace_back([&store, &pairs, k] {
      auto [a, b] = pairs[static_cast<size_t>(k)];
      for (int i = 1; i <= kWritesPerPair; ++i) {
        std::string value = std::to_string(i);
        Status st = RunWrite(store, [&](StoreTxn& txn) {
          Status sa = txn.UpdateNode(a, value);
          if (sa != Status::kOk) return sa;
          return txn.UpdateNode(b, value);
        });
        ASSERT_EQ(st, Status::kOk);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto read = store.BeginReadTxn();
        for (auto [a, b] : pairs) {
          StatusOr<std::string> va = read->GetNode(a);
          StatusOr<std::string> vb = read->GetNode(b);
          if (!va.ok() || !vb.ok() || *va != *vb) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        snapshots_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(snapshots_checked.load(), 0u);
  auto read = store.BeginReadTxn();
  for (auto [a, b] : pairs) {
    EXPECT_EQ(*read->GetNode(a), std::to_string(kWritesPerPair));
    EXPECT_EQ(*read->GetNode(b), std::to_string(kWritesPerPair));
  }
}

// A crash image taken mid-workload (a byte copy of the durable directory
// while the store keeps committing) recovers to a consistent prefix:
// every commit whose records are in the image, nothing torn, nothing from
// after the copy.
TEST_F(ShardedRecoveryTest, PointInTimeCrashImageRecoversCleanPrefix) {
  const std::string image = dir_ + "_image";
  fs::remove_all(image);
  vertex_t a, b;
  {
    ShardedStore store(DurableOptions());
    a = store.AddNode("a");
    b = store.AddNode("b");
    for (int i = 1; i <= 10; ++i) {
      auto txn = store.BeginTxn();
      ASSERT_EQ(txn->UpdateNode(a, "v" + std::to_string(i)), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "v" + std::to_string(i)), Status::kOk);
      ASSERT_TRUE(txn->Commit().ok());
    }
    // The "crash image": the WAL bytes as they were at this instant.
    fs::copy(dir_, image, fs::copy_options::recursive);
    // The store keeps going; none of this may appear in the image.
    for (int i = 11; i <= 15; ++i) {
      auto txn = store.BeginTxn();
      ASSERT_EQ(txn->UpdateNode(a, "v" + std::to_string(i)), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "v" + std::to_string(i)), Status::kOk);
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  ShardOptions options = DurableOptions();
  options.dir = image;
  auto store = ShardedStore::Recover(options);
  auto read = store->BeginShardedReadTxn();
  StatusOr<std::string> va = read->GetNode(a);
  StatusOr<std::string> vb = read->GetNode(b);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  EXPECT_EQ(*va, "v10");
  EXPECT_EQ(*vb, "v10") << "image taken after commit 10 returned";
  fs::remove_all(image);
}

}  // namespace
}  // namespace livegraph
