// Cross-shard correctness for the sharded store (docs/SHARDING.md):
// ID partitioning, edge co-location, multi-shard transaction atomicity,
// epoch-vector snapshot consistency under concurrent multi-shard writers,
// the EdgeCursor shard fan-in mode, and the parallel analytics fan-out
// against a single-engine reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analytics/conncomp.h"
#include "analytics/pagerank.h"
#include "baselines/livegraph_store.h"
#include "shard/sharded_store.h"
#include "util/random.h"

namespace livegraph {
namespace {

constexpr int kShards = 4;

ShardOptions SmallShardOptions(int shards = kShards) {
  ShardOptions options;
  options.shards = shards;
  options.graph.region_reserve = size_t{1} << 30;
  options.graph.max_vertices = 1 << 18;
  return options;
}

TEST(ShardedStoreTest, RoundRobinPlacementYieldsDenseGlobalIds) {
  ShardedStore store(SmallShardOptions());
  // Sequential AddNode round-robins across shards; with the interleaved
  // encoding (global = local * N + shard) that fills 0,1,2,... densely.
  for (vertex_t expect = 0; expect < 8; ++expect) {
    EXPECT_EQ(store.AddNode("v" + std::to_string(expect)), expect);
  }
  EXPECT_EQ(store.VertexCount(), 8);
  auto read = store.BeginReadTxn();
  for (vertex_t v = 0; v < 8; ++v) {
    StatusOr<std::string> props = read->GetNode(v);
    ASSERT_TRUE(props.ok()) << "vertex " << v;
    EXPECT_EQ(*props, "v" + std::to_string(v));
  }
  EXPECT_EQ(read->GetNode(8).status(), Status::kNotFound);
  EXPECT_EQ(read->GetNode(-1).status(), Status::kNotFound);
}

TEST(ShardedStoreTest, EdgesCoLocatedWithSourceYieldGlobalDstIds) {
  ShardedStore store(SmallShardOptions());
  vertex_t hub = store.AddNode("hub");
  std::vector<vertex_t> leaves;
  for (int i = 0; i < 12; ++i) {
    vertex_t leaf = store.AddNode("leaf");
    ASSERT_TRUE(store.AddLink(hub, 0, leaf, "e" + std::to_string(i)).ok());
    leaves.push_back(leaf);
  }
  // The leaves span every shard; the hub's whole list lives in hub's shard.
  std::set<int> shards_hit;
  for (vertex_t leaf : leaves) shards_hit.insert(store.ShardOf(leaf));
  EXPECT_EQ(shards_hit.size(), static_cast<size_t>(kShards));

  auto read = store.BeginReadTxn();
  EXPECT_EQ(read->CountLinks(hub, 0), 12u);
  std::vector<vertex_t> scanned;
  for (EdgeCursor c = read->ScanLinks(hub, 0); c.Valid(); c.Next()) {
    scanned.push_back(c.dst());
  }
  // Newest-first, destinations reported as global IDs.
  std::vector<vertex_t> expect(leaves.rbegin(), leaves.rend());
  EXPECT_EQ(scanned, expect);
  EXPECT_EQ(*read->GetLink(hub, 0, leaves[3]), "e3");
}

TEST(ShardedStoreTest, MultiShardTransactionIsAtomic) {
  ShardedStore store(SmallShardOptions());
  // Pre-create vertices pinned to distinct shards.
  vertex_t a = store.AddNode("a");
  vertex_t b = store.AddNode("b");
  ASSERT_NE(store.ShardOf(a), store.ShardOf(b));

  {
    auto txn = store.BeginTxn();
    ASSERT_EQ(txn->UpdateNode(a, "a-staged"), Status::kOk);
    ASSERT_EQ(txn->UpdateNode(b, "b-staged"), Status::kOk);
    ASSERT_TRUE(txn->AddLink(a, 0, b, "ab").ok());
    ASSERT_TRUE(txn->AddLink(b, 0, a, "ba").ok());
    // Read-your-writes across shards inside the session.
    EXPECT_EQ(*txn->GetNode(a), "a-staged");
    EXPECT_EQ(*txn->GetNode(b), "b-staged");
    txn->Abort();
  }
  EXPECT_EQ(*store.GetNode(a), "a");
  EXPECT_EQ(*store.GetNode(b), "b");
  EXPECT_EQ(store.GetLink(a, 0, b).status(), Status::kNotFound);
  EXPECT_EQ(store.GetLink(b, 0, a).status(), Status::kNotFound);

  {
    auto txn = store.BeginTxn();
    ASSERT_EQ(txn->UpdateNode(a, "a2"), Status::kOk);
    ASSERT_EQ(txn->UpdateNode(b, "b2"), Status::kOk);
    ASSERT_TRUE(txn->AddLink(a, 0, b, "ab").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(*store.GetNode(a), "a2");
  EXPECT_EQ(*store.GetNode(b), "b2");
  EXPECT_EQ(*store.GetLink(a, 0, b), "ab");
}

TEST(ShardedStoreTest, CommitEpochsMonotonicAcrossFastAndCoordinatedPaths) {
  ShardedStore store(SmallShardOptions());
  vertex_t a = store.AddNode("a");
  vertex_t b = store.AddNode("b");
  timestamp_t last = 0;
  for (int i = 0; i < 6; ++i) {
    auto txn = store.BeginTxn();
    if (i % 2 == 0) {
      // Single-shard fast path.
      ASSERT_EQ(txn->UpdateNode(a, "x" + std::to_string(i)), Status::kOk);
    } else {
      // Multi-shard coordinated path.
      ASSERT_EQ(txn->UpdateNode(a, "y" + std::to_string(i)), Status::kOk);
      ASSERT_EQ(txn->UpdateNode(b, "z" + std::to_string(i)), Status::kOk);
    }
    StatusOr<timestamp_t> epoch = txn->Commit();
    ASSERT_TRUE(epoch.ok());
    EXPECT_GT(*epoch, last) << "commit " << i;
    last = *epoch;
  }
}

// The satellite contract: under concurrent multi-shard writers, no read
// session may ever observe a cross-shard transaction's writes in one shard
// but not another — the epoch vector is pinned entirely before or entirely
// after every coordinated commit.
TEST(ShardedStoreTest, NoTornCrossShardSnapshotsUnderConcurrentWriters) {
  ShardedStore store(SmallShardOptions());
  constexpr int kPairs = 4;
  constexpr int kWritesPerPair = 200;
  // Pair k = (a_k, b_k) on different shards; every transaction writes the
  // same sequence number to both sides.
  std::vector<std::pair<vertex_t, vertex_t>> pairs;
  for (int k = 0; k < kPairs; ++k) {
    vertex_t a = store.AddNode("0");
    vertex_t b = store.AddNode("0");
    ASSERT_NE(store.ShardOf(a), store.ShardOf(b));
    pairs.emplace_back(a, b);
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> snapshots_checked{0};

  std::vector<std::thread> writers;
  writers.reserve(kPairs);
  for (int k = 0; k < kPairs; ++k) {
    writers.emplace_back([&store, &pairs, k] {
      auto [a, b] = pairs[static_cast<size_t>(k)];
      for (int i = 1; i <= kWritesPerPair; ++i) {
        std::string value = std::to_string(i);
        Status st = RunWrite(store, [&](StoreTxn& txn) {
          Status sa = txn.UpdateNode(a, value);
          if (sa != Status::kOk) return sa;
          return txn.UpdateNode(b, value);
        });
        ASSERT_EQ(st, Status::kOk);
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto read = store.BeginReadTxn();
        for (auto [a, b] : pairs) {
          StatusOr<std::string> va = read->GetNode(a);
          StatusOr<std::string> vb = read->GetNode(b);
          if (!va.ok() || !vb.ok() || *va != *vb) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        snapshots_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(snapshots_checked.load(), 0u);
  // And the final state is the last write on both sides.
  auto read = store.BeginReadTxn();
  for (auto [a, b] : pairs) {
    EXPECT_EQ(*read->GetNode(a), std::to_string(kWritesPerPair));
    EXPECT_EQ(*read->GetNode(b), std::to_string(kWritesPerPair));
  }
}

TEST(ShardedStoreTest, FanInScanMergesPerShardCursors) {
  ShardedStore store(SmallShardOptions());
  // Three sources on three different shards, each with its own list.
  std::vector<vertex_t> srcs;
  std::vector<std::vector<vertex_t>> dsts(3);
  for (int s = 0; s < 3; ++s) srcs.push_back(store.AddNode("src"));
  for (int i = 0; i < 5; ++i) {
    for (int s = 0; s < 3; ++s) {
      vertex_t d = store.AddNode("leaf");
      ASSERT_TRUE(store
                      .AddLink(srcs[static_cast<size_t>(s)], 0, d,
                               "s" + std::to_string(s))
                      .ok());
      dsts[static_cast<size_t>(s)].push_back(d);
    }
  }

  auto read = static_cast<ShardedStore&>(store).BeginShardedReadTxn();
  // Union: every edge of every source, attributed to its source.
  std::vector<std::vector<vertex_t>> seen(3);
  size_t total = 0;
  for (EdgeCursor c = read->FanInScan(srcs, 0); c.Valid(); c.Next()) {
    ASSERT_LT(c.merge_source(), srcs.size());
    EXPECT_EQ(c.properties(), "s" + std::to_string(c.merge_source()));
    seen[c.merge_source()].push_back(c.dst());
    ++total;
  }
  EXPECT_EQ(total, 15u);
  for (int s = 0; s < 3; ++s) {
    // Per-source order is exact newest-first (the child cursor's order).
    std::vector<vertex_t> expect(dsts[static_cast<size_t>(s)].rbegin(),
                                 dsts[static_cast<size_t>(s)].rend());
    EXPECT_EQ(seen[static_cast<size_t>(s)], expect) << "source " << s;
  }
  // The limit bounds the merged stream as a whole.
  size_t limited = 0;
  for (EdgeCursor c = read->FanInScan(srcs, 0, 7); c.Valid(); c.Next()) {
    ++limited;
  }
  EXPECT_EQ(limited, 7u);
  // Unknown label: merged cursor over three empty children.
  EXPECT_FALSE(read->FanInScan(srcs, 9).Valid());
}

TEST(ShardedStoreTest, ShardedAnalyticsMatchSingleEngine) {
  // Same logical graph in a 4-shard store and a single engine: the shard
  // fan-out kernels must produce identical results over global IDs.
  ShardedStore sharded(SmallShardOptions());
  GraphOptions single_options;
  single_options.region_reserve = size_t{1} << 30;
  single_options.max_vertices = 1 << 18;
  LiveGraphStore single(single_options);

  constexpr vertex_t kVertices = 200;
  for (vertex_t v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sharded.AddNode("v"), v);
    ASSERT_EQ(single.AddNode("v"), v);
  }
  Xorshift rng(42);
  for (int e = 0; e < 600; ++e) {
    auto u = static_cast<vertex_t>(rng.Next() % kVertices);
    auto v = static_cast<vertex_t>(rng.Next() % kVertices);
    ASSERT_TRUE(sharded.AddLink(u, 0, v, {}).ok());
    ASSERT_TRUE(single.AddLink(u, 0, v, {}).ok());
  }

  std::vector<ReadTransaction> snapshots = sharded.PinShardSnapshots();
  auto reference = single.graph().BeginReadOnlyTransaction();

  PageRankOptions pr;
  pr.threads = 4;
  std::vector<double> sharded_pr =
      PageRankOnShardSnapshots(snapshots, 0, pr);
  std::vector<double> single_pr = PageRankOnSnapshot(reference, 0, pr);
  ASSERT_EQ(sharded_pr.size(), single_pr.size());
  for (size_t v = 0; v < single_pr.size(); ++v) {
    EXPECT_NEAR(sharded_pr[v], single_pr[v], 1e-9) << "vertex " << v;
  }

  std::vector<vertex_t> sharded_cc =
      ConnCompOnShardSnapshots(snapshots, 0, 4);
  std::vector<vertex_t> single_cc = ConnCompOnSnapshot(reference, 0, 4);
  EXPECT_EQ(sharded_cc, single_cc);
}

TEST(ShardedStoreTest, DurableDirHoldsOneWalPerShard) {
  namespace fs = std::filesystem;
  const std::string dir = "/tmp/livegraph_shard_dir_test_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  {
    ShardOptions options = SmallShardOptions();
    options.dir = dir;
    options.graph.fsync_wal = false;
    ShardedStore store(options);
    vertex_t a = store.AddNode("a");
    vertex_t b = store.AddNode("b");
    auto txn = store.BeginTxn();
    ASSERT_TRUE(txn->AddLink(a, 0, b, "x").ok());
    ASSERT_TRUE(txn->AddLink(b, 0, a, "y").ok());
    ASSERT_TRUE(txn->Commit().ok());
    for (int s = 0; s < kShards; ++s) {
      EXPECT_TRUE(fs::exists(dir + "/shard" + std::to_string(s) + "/wal"))
          << "shard " << s;
    }
  }
  fs::remove_all(dir);
}

// Read sessions pin ONE global epoch (no per-shard vector): the session's
// read_epoch covers every shard, a commit's epoch is immediately visible
// to the next session, and the epoch is exact under time travel.
TEST(ShardedStoreTest, ReadSessionsPinASingleGlobalEpoch) {
  ShardedStore store(SmallShardOptions());
  vertex_t a = store.AddNode("a");
  vertex_t b = store.AddNode("b");
  ASSERT_NE(store.ShardOf(a), store.ShardOf(b));

  // State 1: multi-shard commit at epoch e1.
  timestamp_t e1;
  {
    auto txn = store.BeginTxn();
    ASSERT_EQ(txn->UpdateNode(a, "a1"), Status::kOk);
    ASSERT_EQ(txn->UpdateNode(b, "b1"), Status::kOk);
    StatusOr<timestamp_t> epoch = txn->Commit();
    ASSERT_TRUE(epoch.ok());
    e1 = *epoch;
  }
  // State 2: single-shard fast-path commit at epoch e2 > e1.
  timestamp_t e2;
  {
    auto txn = store.BeginTxn();
    ASSERT_EQ(txn->UpdateNode(a, "a2"), Status::kOk);
    StatusOr<timestamp_t> epoch = txn->Commit();
    ASSERT_TRUE(epoch.ok());
    e2 = *epoch;
  }
  ASSERT_GT(e2, e1);

  // A fresh session pins one epoch >= e2 and sees the latest state on
  // both shards.
  auto now = store.BeginShardedReadTxn();
  EXPECT_GE(now->read_epoch(), e2);
  EXPECT_EQ(*now->GetNode(a), "a2");
  EXPECT_EQ(*now->GetNode(b), "b1");

  // Cross-shard time travel is exact: at e1 the multi-shard write is
  // visible on BOTH shards and the later fast-path write on neither.
  auto past = store.BeginTimeTravelReadTxn(e1);
  EXPECT_EQ(past->read_epoch(), e1);
  EXPECT_EQ(*past->GetNode(a), "a1");
  EXPECT_EQ(*past->GetNode(b), "b1");
  auto before = store.BeginTimeTravelReadTxn(e1 - 1);
  EXPECT_EQ(*before->GetNode(a), "a");
  EXPECT_EQ(*before->GetNode(b), "b");
}

// Satellite: AddNode falls back to the next shard with room (round-robin
// probe) instead of failing kOutOfRange while other shards have capacity.
TEST(ShardedStoreTest, AddNodeProbesPastFullShards) {
  ShardOptions options = SmallShardOptions(2);
  options.graph.max_vertices = 6;  // 3 local IDs per shard
  ShardedStore store(options);

  // Burn shard capacity unevenly: aborted AddNodes consume local IDs (IDs
  // are claimed eagerly and never returned) and advance the round-robin
  // cursor, so one shard fills while the other still has room.
  {
    auto doomed = store.BeginTxn();
    ASSERT_TRUE(doomed->AddNode("burn0").ok());
    ASSERT_TRUE(doomed->AddNode("burn1").ok());
    ASSERT_TRUE(doomed->AddNode("burn2").ok());
    doomed->Abort();
  }
  // 6 local IDs total, 3 burned. The remaining 3 must all be reachable
  // even when the round-robin cursor lands on a full shard.
  std::vector<vertex_t> added;
  for (int i = 0; i < 3; ++i) {
    auto txn = store.BeginTxn();
    StatusOr<vertex_t> id = txn->AddNode("keep" + std::to_string(i));
    ASSERT_TRUE(id.ok()) << "node " << i << ": " << StatusName(id.status());
    ASSERT_TRUE(txn->Commit().ok());
    added.push_back(*id);
  }
  // Now every shard is at capacity: kOutOfRange, and the session survives.
  auto txn = store.BeginTxn();
  StatusOr<vertex_t> overflow = txn->AddNode("overflow");
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status(), Status::kOutOfRange);
  // The session is still usable after the capacity failure.
  ASSERT_EQ(txn->UpdateNode(added[0], "still-usable"), Status::kOk);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*store.GetNode(added[0]), "still-usable");
}

}  // namespace
}  // namespace livegraph
