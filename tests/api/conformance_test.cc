// Cross-engine conformance for the v2 transaction-first API: every engine
// — LiveGraph, its paged (out-of-core) configuration, the three baselines,
// the hash-partitioned sharded engine, and the remote deployments of both
// LiveGraph and ShardedLiveGraph over loopback TCP — must satisfy the same
// StoreTxn/StoreReadTxn contract behind one parameterized suite, so the
// LinkBench/SNB harnesses run unmodified against all of them (the paper's
// §7.1 methodology). Engine-specific
// strengths (newest-first order, MVCC snapshots, rollback) are asserted
// exactly where StoreTraits declares them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analytics/etl.h"
#include "api/store.h"
#include "baselines/btree_store.h"
#include "baselines/linked_list_store.h"
#include "baselines/livegraph_store.h"
#include "baselines/lsmt_store.h"
#include "server/loopback.h"
#include "shard/sharded_store.h"

namespace livegraph {
namespace {

GraphOptions SmallGraphOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  return options;
}

ShardOptions SmallShardOptions() {
  ShardOptions options;
  // Default 4; LG_CONFORMANCE_SHARDS overrides so CI can sweep other
  // shard counts through the identical contract suite.
  if (const char* env = std::getenv("LG_CONFORMANCE_SHARDS")) {
    int n = std::atoi(env);
    if (n > 0) options.shards = n;
  }
  options.graph = SmallGraphOptions();
  return options;
}

using StoreFactory = std::function<std::unique_ptr<Store>()>;

/// Wraps a store whose durable state lives under `dir`; removes the
/// directory when the store is destroyed so per-test recovery backends
/// leave nothing in /tmp.
class ScopedDirStore : public Store {
 public:
  ScopedDirStore(std::unique_ptr<Store> inner, std::string dir)
      : inner_(std::move(inner)), dir_(std::move(dir)) {}
  ~ScopedDirStore() override {
    inner_.reset();
    std::filesystem::remove_all(dir_);
  }
  std::string Name() const override { return inner_->Name(); }
  StoreTraits Traits() const override { return inner_->Traits(); }
  std::unique_ptr<StoreTxn> BeginTxn() override { return inner_->BeginTxn(); }
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override {
    return inner_->BeginReadTxn();
  }

 private:
  std::unique_ptr<Store> inner_;
  std::string dir_;
};

class StoreConformanceTest
    : public ::testing::TestWithParam<std::pair<const char*, StoreFactory>> {
 protected:
  void SetUp() override { store_ = GetParam().second(); }
  std::unique_ptr<Store> store_;
};

TEST_P(StoreConformanceTest, NodeLifecycleThroughOneSession) {
  auto txn = store_->BeginTxn();
  StatusOr<vertex_t> added = txn->AddNode("alpha");
  ASSERT_TRUE(added.ok());
  vertex_t id = *added;
  // Read-your-writes inside the session.
  StatusOr<std::string> props = txn->GetNode(id);
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(*props, "alpha");
  EXPECT_EQ(txn->UpdateNode(id, "beta"), Status::kOk);
  ASSERT_TRUE(txn->Commit().ok());

  auto read = store_->BeginReadTxn();
  props = read->GetNode(id);
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(*props, "beta");
  EXPECT_GT(read->VertexCount(), id);
  read.reset();  // latch-based engines: release before writing

  EXPECT_EQ(store_->DeleteNode(id), Status::kOk);
  EXPECT_EQ(store_->GetNode(id).status(), Status::kNotFound);
  EXPECT_EQ(store_->UpdateNode(id, "gamma"), Status::kNotFound)
      << "UPDATE_NODE must not resurrect deleted nodes";
}

TEST_P(StoreConformanceTest, LinkUpsertSemantics) {
  vertex_t a = store_->AddNode("a");
  vertex_t b = store_->AddNode("b");
  StatusOr<bool> first = store_->AddLink(a, 0, b, "v1");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first) << "first add is an insert";
  StatusOr<bool> second = store_->AddLink(a, 0, b, "v2");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second) << "second add is an update";
  StatusOr<std::string> out = store_->GetLink(a, 0, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "v2");
  EXPECT_EQ(store_->UpdateLink(a, 0, b, "v3"), Status::kOk);
  out = store_->GetLink(a, 0, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "v3");
  EXPECT_EQ(store_->UpdateLink(a, 0, a, "nope"), Status::kNotFound)
      << "update of missing link must fail";
  EXPECT_EQ(store_->DeleteLink(a, 0, b), Status::kOk);
  EXPECT_EQ(store_->GetLink(a, 0, b).status(), Status::kNotFound);
  EXPECT_EQ(store_->DeleteLink(a, 0, b), Status::kNotFound);
}

TEST_P(StoreConformanceTest, ScanVisitsAllAndNewestFirstWhereDeclared) {
  vertex_t hub = store_->AddNode("hub");
  std::vector<vertex_t> dsts;  // insertion order
  for (int i = 0; i < 50; ++i) {
    vertex_t d = store_->AddNode("leaf");
    ASSERT_TRUE(store_->AddLink(hub, 0, d, "e" + std::to_string(i)).ok());
    dsts.push_back(d);
  }
  auto read = store_->BeginReadTxn();
  EXPECT_EQ(read->CountLinks(hub, 0), 50u);
  std::vector<vertex_t> scanned;
  for (EdgeCursor c = read->ScanLinks(hub, 0); c.Valid(); c.Next()) {
    scanned.push_back(c.dst());
  }
  ASSERT_EQ(scanned.size(), 50u);
  EXPECT_EQ(std::set<vertex_t>(scanned.begin(), scanned.end()),
            std::set<vertex_t>(dsts.begin(), dsts.end()));
  if (store_->Traits().time_ordered_scans) {
    // LinkBench GET_LINKS_LIST contract: most recently added first
    // (§7.2 "storing edges by time order").
    std::vector<vertex_t> newest_first(dsts.rbegin(), dsts.rend());
    EXPECT_EQ(scanned, newest_first);
  }
}

TEST_P(StoreConformanceTest, CursorEarlyExitAndProperties) {
  vertex_t hub = store_->AddNode("hub");
  for (int i = 0; i < 20; ++i) {
    vertex_t d = store_->AddNode("leaf");
    ASSERT_TRUE(store_->AddLink(hub, 0, d, "payload").ok());
  }
  auto read = store_->BeginReadTxn();
  // LIMIT-style consumption: stop after 5 — no callback to thread a stop
  // condition through, the caller just leaves the loop.
  size_t visited = 0;
  for (EdgeCursor c = read->ScanLinks(hub, 0); c.Valid(); c.Next()) {
    EXPECT_EQ(c.properties(), "payload");
    if (++visited == 5) break;
  }
  EXPECT_EQ(visited, 5u);
  // An exhausted cursor goes invalid.
  EdgeCursor c = read->ScanLinks(hub, 0);
  while (c.Valid()) c.Next();
  EXPECT_FALSE(c.Valid());
  // Scanning a vertex with no adjacency yields an empty cursor.
  EXPECT_FALSE(read->ScanLinks(hub, 77).Valid());
}

TEST_P(StoreConformanceTest, ScanLimitBoundsCursorUniformly) {
  vertex_t hub = store_->AddNode("hub");
  for (int i = 0; i < 20; ++i) {
    vertex_t d = store_->AddNode("leaf");
    ASSERT_TRUE(store_->AddLink(hub, 0, d, "e").ok());
  }
  auto read = store_->BeginReadTxn();
  // GET_LINKS_LIST-style bound: every engine yields exactly min(limit,
  // degree) even if the caller keeps iterating.
  size_t yielded = 0;
  for (EdgeCursor c = read->ScanLinks(hub, 0, 5); c.Valid(); c.Next()) {
    yielded++;
  }
  EXPECT_EQ(yielded, 5u);
  yielded = 0;
  for (EdgeCursor c = read->ScanLinks(hub, 0, 100); c.Valid(); c.Next()) {
    yielded++;
  }
  EXPECT_EQ(yielded, 20u);
  EXPECT_FALSE(read->ScanLinks(hub, 0, 0).Valid());
}

TEST_P(StoreConformanceTest, LabelsAreDisjoint) {
  vertex_t a = store_->AddNode("a");
  vertex_t b = store_->AddNode("b");
  ASSERT_TRUE(store_->AddLink(a, 1, b, "L1").ok());
  ASSERT_TRUE(store_->AddLink(a, 2, b, "L2").ok());
  auto read = store_->BeginReadTxn();
  EXPECT_EQ(read->CountLinks(a, 1), 1u);
  EXPECT_EQ(read->CountLinks(a, 2), 1u);
  EXPECT_EQ(read->CountLinks(a, 3), 0u);
  StatusOr<std::string> out = read->GetLink(a, 1, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "L1");
  read.reset();
  EXPECT_EQ(store_->DeleteLink(a, 1, b), Status::kOk);
  read = store_->BeginReadTxn();
  EXPECT_EQ(read->CountLinks(a, 1), 0u);
  EXPECT_EQ(read->CountLinks(a, 2), 1u);
}

TEST_P(StoreConformanceTest, ReadTxnIsConsistentSession) {
  vertex_t a = store_->AddNode("node-a");
  vertex_t b = store_->AddNode("node-b");
  ASSERT_TRUE(store_->AddLink(a, 0, b, "edge").ok());
  auto read = store_->BeginReadTxn();
  // Multi-operation reads inside one session agree with each other.
  StatusOr<std::string> node = read->GetNode(a);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, "node-a");
  StatusOr<std::string> link = read->GetLink(a, 0, b);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(*link, "edge");
  EXPECT_EQ(read->CountLinks(a, 0), 1u);
  EdgeCursor c = read->ScanLinks(a, 0);
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.dst(), b);
  // Repeated reads of the same key within the session are stable.
  EXPECT_EQ(*read->GetNode(a), *node);
}

TEST_P(StoreConformanceTest, SnapshotIsolationWhereDeclared) {
  if (!store_->Traits().snapshot_reads) {
    GTEST_SKIP() << "latch-based engine: writers block instead";
  }
  vertex_t a = store_->AddNode("a");
  vertex_t b = store_->AddNode("b");
  ASSERT_TRUE(store_->AddLink(a, 0, b, "old").ok());
  auto snapshot = store_->BeginReadTxn();
  // Concurrent commits after the snapshot began must stay invisible —
  // and must not block (MVCC: "readers never block writers").
  ASSERT_TRUE(store_->AddLink(a, 0, a, "new-edge").ok());
  ASSERT_EQ(store_->UpdateNode(a, "a2"), Status::kOk);
  EXPECT_EQ(*snapshot->GetNode(a), "a");
  EXPECT_EQ(snapshot->CountLinks(a, 0), 1u);
  auto fresh = store_->BeginReadTxn();
  EXPECT_EQ(*fresh->GetNode(a), "a2");
  EXPECT_EQ(fresh->CountLinks(a, 0), 2u);
}

TEST_P(StoreConformanceTest, AbortRollsBackWhereDeclared) {
  if (!store_->Traits().transactional_writes) {
    GTEST_SKIP() << "in-place engine: Abort only ends the session";
  }
  vertex_t a = store_->AddNode("a");
  {
    auto txn = store_->BeginTxn();
    ASSERT_TRUE(txn->AddLink(a, 0, a, "staged").ok());
    ASSERT_EQ(txn->UpdateNode(a, "mutated"), Status::kOk);
    txn->Abort();
  }
  EXPECT_EQ(*store_->GetNode(a), "a");
  EXPECT_EQ(store_->GetLink(a, 0, a).status(), Status::kNotFound);
  {
    // Destroying an open session must abort, not leak the writes.
    auto txn = store_->BeginTxn();
    ASSERT_TRUE(txn->AddLink(a, 0, a, "dropped").ok());
  }
  EXPECT_EQ(store_->GetLink(a, 0, a).status(), Status::kNotFound);
}

TEST_P(StoreConformanceTest, CommitEpochsAreMonotonic) {
  timestamp_t last = 0;
  for (int i = 0; i < 5; ++i) {
    auto txn = store_->BeginTxn();
    ASSERT_TRUE(txn->AddNode("n").ok());
    StatusOr<timestamp_t> epoch = txn->Commit();
    ASSERT_TRUE(epoch.ok());
    EXPECT_GT(*epoch, last) << "commit " << i;
    last = *epoch;
  }
}

TEST_P(StoreConformanceTest, MultiObjectSessionCommitsAtomically) {
  // SNB-style update: several objects in one write session.
  vertex_t author = store_->AddNode("author");
  auto txn = store_->BeginTxn();
  StatusOr<vertex_t> post = txn->AddNode("post");
  ASSERT_TRUE(post.ok());
  ASSERT_TRUE(txn->AddLink(author, 1, *post, "created").ok());
  ASSERT_TRUE(txn->AddLink(*post, 2, author, "creator").ok());
  ASSERT_TRUE(txn->Commit().ok());

  auto read = store_->BeginReadTxn();
  EXPECT_TRUE(read->GetNode(*post).ok());
  EXPECT_EQ(read->CountLinks(author, 1), 1u);
  EXPECT_EQ(read->CountLinks(*post, 2), 1u);
}

TEST_P(StoreConformanceTest, ExportToCsrThroughSessionApi) {
  // The analytics ETL path must work on any engine via cursors.
  vertex_t v0 = store_->AddNode("v0");
  vertex_t v1 = store_->AddNode("v1");
  vertex_t v2 = store_->AddNode("v2");
  ASSERT_TRUE(store_->AddLink(v0, 0, v1, {}).ok());
  ASSERT_TRUE(store_->AddLink(v0, 0, v2, {}).ok());
  ASSERT_TRUE(store_->AddLink(v2, 0, v0, {}).ok());
  auto read = store_->BeginReadTxn();
  Csr csr = ExportToCsr(*read, 0);
  EXPECT_EQ(csr.edge_count(), 3);
  EXPECT_EQ(csr.Degree(v0), 2);
  EXPECT_EQ(csr.Degree(v1), 0);
  EXPECT_EQ(csr.Degree(v2), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, StoreConformanceTest,
    ::testing::Values(
        std::make_pair("LiveGraph",
                       StoreFactory([] {
                         return std::unique_ptr<Store>(
                             new LiveGraphStore(SmallGraphOptions()));
                       })),
        std::make_pair("PagedLiveGraph",
                       StoreFactory([] {
                         return std::unique_ptr<Store>(new LiveGraphStore(
                             SmallGraphOptions(),
                             PageCacheSim::Optane(/*capacity_pages=*/256)));
                       })),
        std::make_pair("BTree",
                       StoreFactory([] {
                         return std::unique_ptr<Store>(new BTreeStore());
                       })),
        std::make_pair("Lsmt",
                       StoreFactory([] {
                         return std::unique_ptr<Store>(new LsmtStore());
                       })),
        std::make_pair("LinkedList",
                       StoreFactory([] {
                         return std::unique_ptr<Store>(
                             new LinkedListStore());
                       })),
        // The sharded engine behind the same contract: N independent
        // LiveGraph shards, cross-shard snapshot transactions
        // (docs/SHARDING.md). Shard count defaults to 4;
        // LG_CONFORMANCE_SHARDS overrides.
        std::make_pair("ShardedLiveGraph",
                       StoreFactory([] {
                         return std::unique_ptr<Store>(
                             new ShardedStore(SmallShardOptions()));
                       })),
        // The sharded engine opened through ShardedStore::Recover with a
        // live per-shard WAL directory: every contract runs on a store
        // that went through the recovery path and logs durably while the
        // contracts execute (docs/SHARDING.md "Recovery").
        std::make_pair("RecoveredShardedLiveGraph",
                       StoreFactory([] {
                         static int counter = 0;
                         std::string dir =
                             "/tmp/lg_conformance_recover_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(counter++);
                         std::filesystem::remove_all(dir);
                         ShardOptions options = SmallShardOptions();
                         options.dir = dir;
                         options.graph.fsync_wal = false;
                         return std::unique_ptr<Store>(new ScopedDirStore(
                             ShardedStore::Recover(options), dir));
                       })),
        // The network subsystem behind the same contract: a LiveGraph
        // engine served by GraphServer over loopback TCP, driven through
        // RemoteStore. Same 12 contracts, every request on the wire.
        std::make_pair("RemoteLiveGraph",
                       StoreFactory([] {
                         return MakeLoopbackStore(
                             std::make_unique<LiveGraphStore>(
                                 SmallGraphOptions()));
                       })),
        // Both at once: the sharded engine served over loopback TCP —
        // every contract crosses the wire AND the shard coordinator.
        std::make_pair("RemoteShardedLiveGraph",
                       StoreFactory([] {
                         return MakeLoopbackStore(
                             std::make_unique<ShardedStore>(
                                 SmallShardOptions()));
                       })),
        // The replication topology behind the same contract: a durable
        // sharded primary with WAL shipping attached, a follower applying
        // the stream, and a client that writes to the primary and reads
        // from the follower under the read-your-epoch rule
        // (docs/REPLICATION.md). Every read contract is answered by the
        // replica over real loopback TCP.
        std::make_pair("ReplicatedLiveGraph",
                       StoreFactory([] {
                         static int counter = 0;
                         std::string root =
                             "/tmp/lg_conformance_repl_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(counter++);
                         std::filesystem::remove_all(root);
                         std::filesystem::create_directories(root);
                         ShardOptions options = SmallShardOptions();
                         options.dir = root + "/primary";
                         options.graph.fsync_wal = false;
                         return std::unique_ptr<Store>(new ScopedDirStore(
                             MakeReplicatedLoopbackStore(options,
                                                         root + "/replica"),
                             root));
                       }))),
    [](const auto& info) { return info.param.first; });

}  // namespace
}  // namespace livegraph
