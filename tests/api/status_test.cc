// StatusOr<T> semantics: the single result type of the v2 API.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "api/status.h"

namespace livegraph {
namespace {

TEST(StatusOr, CarriesValueOnSuccess) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.has_value());
  EXPECT_EQ(result.status(), Status::kOk);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(StatusOr, CarriesStatusOnFailure) {
  StatusOr<int> result = Status::kNotFound;
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status(), Status::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOr, ComparableAgainstBareStatus) {
  StatusOr<int> good = 7;
  StatusOr<int> bad = Status::kConflict;
  EXPECT_TRUE(good == Status::kOk);
  EXPECT_TRUE(good != Status::kConflict);
  EXPECT_TRUE(bad == Status::kConflict);
  EXPECT_TRUE(bad != Status::kOk);
}

TEST(StatusOr, ConvertingConstruction) {
  // A string_view return initializes a StatusOr<std::string> (the store
  // adaptors copy engine-owned bytes out through exactly this path).
  std::string_view view = "payload";
  StatusOr<std::string> owned = view;
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(*owned, "payload");
  EXPECT_EQ(owned->size(), 7u);
}

TEST(StatusOr, EqualityComparesValues) {
  EXPECT_EQ(StatusOr<int>(1), StatusOr<int>(1));
  EXPECT_NE(StatusOr<int>(1), StatusOr<int>(2));
  EXPECT_NE(StatusOr<int>(1), StatusOr<int>(Status::kNotFound));
  EXPECT_EQ(StatusOr<int>(Status::kNotFound),
            StatusOr<int>(Status::kNotFound));
}

TEST(StatusOr, RetryabilityClassification) {
  EXPECT_TRUE(IsRetryable(Status::kConflict));
  EXPECT_TRUE(IsRetryable(Status::kTimeout));
  EXPECT_FALSE(IsRetryable(Status::kOk));
  EXPECT_FALSE(IsRetryable(Status::kNotFound));
  EXPECT_FALSE(IsRetryable(Status::kNotActive));
}

}  // namespace
}  // namespace livegraph
