// Server/client integration over real loopback TCP: session mapping,
// pipelined scan streaming (multi-batch, early exit, connection reuse),
// failure degradation, and concurrent clients. Contract-level behavior is
// covered by the conformance suite's RemoteLiveGraph backend; these tests
// pin the network-specific mechanics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/linked_list_store.h"
#include "baselines/livegraph_store.h"
#include "server/graph_server.h"
#include "server/loopback.h"
#include "server/net.h"
#include "server/remote_store.h"
#include "server/wire.h"

namespace livegraph {
namespace {

GraphOptions SmallGraphOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  return options;
}

// Engine + server + connected client, with a tiny scan batch budget so
// even short adjacency lists stream across several frames.
struct Harness {
  explicit Harness(size_t scan_batch_edges = 4) {
    engine = std::make_unique<LiveGraphStore>(SmallGraphOptions());
    GraphServer::Options options;
    options.scan_batch_edges = scan_batch_edges;
    // CI hook: LG_TEST_REACTORS pins the event-loop count (the tsan job
    // runs these integration tests at 2); unset keeps the default.
    if (const char* env = std::getenv("LG_TEST_REACTORS")) {
      options.reactors = std::atoi(env);
    }
    server = std::make_unique<GraphServer>(*engine, options);
    EXPECT_TRUE(server->Start());
    client = RemoteStore::Connect("127.0.0.1", server->port());
    EXPECT_NE(client, nullptr);
  }
  ~Harness() {
    client.reset();
    server->Stop();
  }

  std::unique_ptr<Store> engine;
  std::unique_ptr<GraphServer> server;
  std::unique_ptr<RemoteStore> client;
};

TEST(RemoteStore, HandshakeReportsEngineNameAndTraits) {
  Harness harness;
  EXPECT_EQ(harness.client->Name(), "remote/LiveGraph");
  StoreTraits traits = harness.client->Traits();
  EXPECT_TRUE(traits.time_ordered_scans);
  EXPECT_TRUE(traits.snapshot_reads);
  EXPECT_TRUE(traits.transactional_writes);
  EXPECT_EQ(harness.client->BeginReadTxn()->SessionStatus(), Status::kOk);
}

TEST(RemoteStore, ConnectFailsAgainstClosedPort) {
  // Grab a port that is guaranteed closed by binding then releasing it.
  uint16_t dead_port = 0;
  {
    Socket listener = ListenTcp("127.0.0.1", 0, &dead_port);
    ASSERT_TRUE(listener.valid());
  }
  EXPECT_EQ(RemoteStore::Connect("127.0.0.1", dead_port), nullptr);
}

TEST(RemoteStore, WritesAreVisibleThroughTheEmbeddedEngine) {
  Harness harness;
  vertex_t id = harness.client->AddNode("over-the-wire");
  ASSERT_NE(id, kNullVertex);
  // The server applied it to the real engine: read it locally.
  StatusOr<std::string> local = harness.engine->GetNode(id);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*local, "over-the-wire");
}

TEST(RemoteStore, ScanStreamsAcrossManyBatches) {
  Harness harness(/*scan_batch_edges=*/4);
  vertex_t hub = harness.client->AddNode("hub");
  std::vector<vertex_t> dsts;
  for (int i = 0; i < 23; ++i) {  // 23 edges / 4 per batch -> 6 frames
    vertex_t d = harness.client->AddNode("leaf");
    ASSERT_TRUE(
        harness.client->AddLink(hub, 0, d, "p" + std::to_string(i)).ok());
    dsts.push_back(d);
  }
  auto read = harness.client->BeginReadTxn();
  std::vector<vertex_t> scanned;
  std::vector<std::string> props;
  for (EdgeCursor c = read->ScanLinks(hub, 0); c.Valid(); c.Next()) {
    scanned.push_back(c.dst());
    props.push_back(std::string(c.properties()));
  }
  ASSERT_EQ(scanned.size(), 23u);
  // LiveGraph scans newest-first; properties must track their edges across
  // batch boundaries.
  for (size_t i = 0; i < scanned.size(); ++i) {
    size_t original = scanned.size() - 1 - i;
    EXPECT_EQ(scanned[i], dsts[original]);
    EXPECT_EQ(props[i], "p" + std::to_string(original));
  }
}

TEST(RemoteStore, EarlyExitScanLeavesConnectionUsable) {
  Harness harness(/*scan_batch_edges=*/4);
  vertex_t hub = harness.client->AddNode("hub");
  for (int i = 0; i < 40; ++i) {
    vertex_t d = harness.client->AddNode("leaf");
    ASSERT_TRUE(harness.client->AddLink(hub, 0, d, "x").ok());
  }
  auto read = harness.client->BeginReadTxn();
  {
    // Abandon the stream after 3 of ~10 batches.
    EdgeCursor cursor = read->ScanLinks(hub, 0);
    size_t seen = 0;
    for (; cursor.Valid() && seen < 3; cursor.Next()) seen++;
    EXPECT_EQ(seen, 3u);
  }
  // The same session (same connection) must keep working: the pending
  // batches are drained transparently before the next request.
  EXPECT_EQ(read->CountLinks(hub, 0), 40u);
  // And a fresh full scan still sees everything.
  size_t total = 0;
  for (EdgeCursor c = read->ScanLinks(hub, 0); c.Valid(); c.Next()) total++;
  EXPECT_EQ(total, 40u);
}

TEST(RemoteStore, NestedScansAndPointReadsInterleaveOnOneSession) {
  // SNB traversal shape: an outer cursor with point reads and nested
  // scans issued mid-stream on the same session. The outer stream's
  // pending batches must be parked, not lost.
  Harness harness(/*scan_batch_edges=*/2);  // force many in-flight frames
  vertex_t hub = harness.client->AddNode("hub");
  std::vector<vertex_t> mids;
  for (int m = 0; m < 9; ++m) {
    vertex_t mid = harness.client->AddNode("mid" + std::to_string(m));
    ASSERT_TRUE(harness.client->AddLink(hub, 0, mid, "hm").ok());
    for (int l = 0; l < 5; ++l) {
      vertex_t leaf = harness.client->AddNode("leaf");
      ASSERT_TRUE(harness.client->AddLink(mid, 1, leaf, "ml").ok());
    }
    mids.push_back(mid);
  }
  auto read = harness.client->BeginReadTxn();
  size_t outer_count = 0;
  for (EdgeCursor outer = read->ScanLinks(hub, 0); outer.Valid();
       outer.Next()) {
    outer_count++;
    // Point read mid-stream.
    StatusOr<std::string> props = read->GetNode(outer.dst());
    ASSERT_TRUE(props.ok());
    EXPECT_EQ(props->substr(0, 3), "mid");
    // Nested scan mid-stream.
    size_t inner_count = 0;
    for (EdgeCursor inner = read->ScanLinks(outer.dst(), 1); inner.Valid();
         inner.Next()) {
      inner_count++;
      EXPECT_EQ(inner.properties(), "ml");
    }
    EXPECT_EQ(inner_count, 5u);
  }
  EXPECT_EQ(outer_count, 9u);
}

TEST(RemoteStore, ScanLimitIsEnforcedServerSide) {
  Harness harness(/*scan_batch_edges=*/4);
  vertex_t hub = harness.client->AddNode("hub");
  for (int i = 0; i < 30; ++i) {
    vertex_t d = harness.client->AddNode("leaf");
    ASSERT_TRUE(harness.client->AddLink(hub, 0, d, "x").ok());
  }
  auto read = harness.client->BeginReadTxn();
  size_t yielded = 0;
  for (EdgeCursor c = read->ScanLinks(hub, 0, 7); c.Valid(); c.Next()) {
    yielded++;
  }
  EXPECT_EQ(yielded, 7u);
  EXPECT_FALSE(read->ScanLinks(hub, 0, 0).Valid());
  EXPECT_FALSE(read->ScanLinks(hub, 99).Valid());  // empty list
}

TEST(RemoteStore, SessionsReuseConnectionsFromThePool) {
  Harness harness;
  for (int i = 0; i < 8; ++i) {
    auto txn = harness.client->BeginTxn();
    ASSERT_TRUE(txn->AddNode("n").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Sequential sessions ride one pooled connection — no dial per session.
  EXPECT_EQ(harness.client->idle_connections(), 1u);
}

TEST(RemoteStore, OpsAfterServerStopReportUnavailable) {
  Harness harness;
  vertex_t id = harness.client->AddNode("n");
  ASSERT_NE(id, kNullVertex);
  harness.server->Stop();
  // New sessions cannot dial; their operations degrade to kUnavailable
  // (and RunWrite-backed wrappers surface failure without retry storms).
  auto txn = harness.client->BeginTxn();
  EXPECT_EQ(txn->AddNode("x").status(), Status::kUnavailable);
  EXPECT_EQ(txn->Commit().status(), Status::kUnavailable);
  EXPECT_EQ(harness.client->GetNode(id).status(), Status::kUnavailable);
  // Status-less reads (CountLinks, ScanLinks) expose the dead connection
  // through SessionStatus, so drivers can count the op as failed.
  auto read = harness.client->BeginReadTxn();
  EXPECT_EQ(read->CountLinks(id, 0), 0u);
  EXPECT_EQ(read->SessionStatus(), Status::kUnavailable);
}

TEST(RemoteStore, GarbageBytesTearDownTheConnectionNotTheServer) {
  Harness harness;
  // A raw socket spews non-protocol bytes: the server must drop that
  // connection (CRC/magic guard) and keep serving others.
  Socket raw = ConnectTcp("127.0.0.1", harness.server->port());
  ASSERT_TRUE(raw.valid());
  std::string garbage(64, '\xEE');
  // The write itself may race the server's hang-up; only the outcome
  // (connection closed, server alive) is asserted.
  raw.WriteFull(garbage.data(), garbage.size());
  char byte;
  EXPECT_FALSE(raw.ReadFull(&byte, 1)) << "server should hang up";
  // The real client still works.
  EXPECT_NE(harness.client->AddNode("still-alive"), kNullVertex);
}

TEST(RemoteStore, DroppedConnectionAbortsOpenTransactions) {
  Harness harness;
  vertex_t id = harness.client->AddNode("base");
  {
    // Speak the protocol over a raw socket so the connection can vanish
    // mid-transaction with no polite Abort on the wire.
    Socket raw = ConnectTcp("127.0.0.1", harness.server->port());
    ASSERT_TRUE(raw.valid());
    std::string scratch;
    auto call = [&](MsgType type, const std::string& body, Frame* reply) {
      return raw.WriteFrame(type, kFlagNone, body, &scratch) &&
             raw.ReadFrame(reply);
    };
    std::string body;
    WireWriter hello(&body);
    hello.PutU32(kProtocolVersion);
    Frame reply;
    ASSERT_TRUE(call(MsgType::kHello, body, &reply));

    ASSERT_TRUE(call(MsgType::kBeginTxn, "", &reply));
    WireReader reader(reply.body);
    uint8_t status;
    uint64_t txn_id;
    ASSERT_TRUE(reader.GetU8(&status));
    ASSERT_EQ(StatusFromWire(status), Status::kOk);
    ASSERT_TRUE(reader.GetU64(&txn_id));

    body.clear();
    WireWriter add(&body);
    add.PutU64(txn_id);
    add.PutI64(id);
    add.PutU16(0);
    add.PutI64(id);
    add.PutBytes("staged");
    ASSERT_TRUE(call(MsgType::kAddLink, body, &reply));
    // Socket closes here — no Commit, no Abort frame.
  }
  // Server-side session cleanup aborted the staged write.
  for (int i = 0; i < 100; ++i) {  // connection teardown is asynchronous
    if (harness.server->active_connections() <= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(harness.engine->GetLink(id, 0, id).status(), Status::kNotFound);
}

TEST(RemoteStore, ConcurrentClientsCommitIndependently) {
  Harness harness;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto txn = harness.client->BeginTxn();
        StatusOr<vertex_t> added = txn->AddNode("c");
        if (!added.ok() || !txn->Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  auto read = harness.client->BeginReadTxn();
  EXPECT_GE(read->VertexCount(), vertex_t{kThreads * kOpsPerThread});
}

TEST(LoopbackStore, WrapsAnyEngine) {
  auto loopback = MakeLoopbackStore(std::make_unique<LinkedListStore>());
  ASSERT_NE(loopback, nullptr);
  EXPECT_EQ(loopback->Name(), "remote/LinkedList");
  EXPECT_FALSE(loopback->Traits().snapshot_reads);
  vertex_t a = loopback->AddNode("a");
  vertex_t b = loopback->AddNode("b");
  ASSERT_TRUE(loopback->AddLink(a, 3, b, "edge").ok());
  StatusOr<std::string> out = loopback->GetLink(a, 3, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "edge");
  EXPECT_EQ(loopback->CountLinks(a, 3), 1u);
}

}  // namespace
}  // namespace livegraph
