// Wire-protocol unit tests: frame round trips, and rejection of every
// flavor of damage a network can inflict — truncation, bit flips in header
// and body, bogus lengths — before any field is trusted.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "server/wire.h"

namespace livegraph {
namespace {

// Splits an encoded frame back into (header, body) for the decode helpers.
struct SplitFrame {
  char header[kFrameHeaderSize];
  std::string body;
};

SplitFrame Split(const std::string& encoded) {
  SplitFrame split{};
  EXPECT_GE(encoded.size(), kFrameHeaderSize)
      << "frame shorter than a header";
  if (encoded.size() >= kFrameHeaderSize) {
    std::memcpy(split.header, encoded.data(), kFrameHeaderSize);
    split.body = encoded.substr(kFrameHeaderSize);
  }
  return split;
}

TEST(WireCodec, FixedWidthRoundTrip) {
  std::string buffer;
  WireWriter writer(&buffer);
  writer.PutU8(0xAB);
  writer.PutU16(0xBEEF);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutI64(-42);
  writer.PutBytes("payload");

  WireReader reader(buffer);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  std::string_view bytes;
  ASSERT_TRUE(reader.GetU8(&u8));
  ASSERT_TRUE(reader.GetU16(&u16));
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetI64(&i64));
  ASSERT_TRUE(reader.GetBytes(&bytes));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(bytes, "payload");
  EXPECT_TRUE(reader.Exhausted());
}

TEST(WireCodec, ReaderRejectsTruncation) {
  std::string buffer;
  WireWriter writer(&buffer);
  writer.PutU32(7);
  WireReader reader(std::string_view(buffer).substr(0, 3));
  uint32_t value;
  EXPECT_FALSE(reader.GetU32(&value));

  // Length prefix claiming more bytes than the buffer holds.
  std::string lying;
  WireWriter liar(&lying);
  liar.PutU32(100);  // length prefix with no payload behind it
  WireReader lied_to(lying);
  std::string_view bytes;
  EXPECT_FALSE(lied_to.GetBytes(&bytes));
}

TEST(FrameCodec, EncodeDecodeRoundTrip) {
  std::string encoded;
  EncodeFrame(MsgType::kScanBatch, kFlagEndOfStream, "edge-bytes", &encoded);
  EXPECT_EQ(encoded.size(), kFrameHeaderSize + 10);

  SplitFrame split = Split(encoded);
  MsgType type;
  uint8_t flags;
  uint32_t body_size;
  ASSERT_TRUE(DecodeFrameHeader(split.header, &type, &flags, &body_size));
  EXPECT_EQ(type, MsgType::kScanBatch);
  EXPECT_EQ(flags, kFlagEndOfStream);
  EXPECT_EQ(body_size, 10u);
  EXPECT_TRUE(ValidateFrame(split.header, split.body));
}

TEST(FrameCodec, EmptyBodyRoundTrip) {
  std::string encoded;
  EncodeFrame(MsgType::kBeginTxn, kFlagNone, "", &encoded);
  SplitFrame split = Split(encoded);
  MsgType type;
  uint8_t flags;
  uint32_t body_size;
  ASSERT_TRUE(DecodeFrameHeader(split.header, &type, &flags, &body_size));
  EXPECT_EQ(body_size, 0u);
  EXPECT_TRUE(ValidateFrame(split.header, split.body));
}

TEST(FrameCodec, AppendsWithoutClearing) {
  // Connections batch multiple frames into one send buffer.
  std::string encoded;
  EncodeFrame(MsgType::kScanBatch, kFlagNone, "first", &encoded);
  size_t first_size = encoded.size();
  EncodeFrame(MsgType::kScanBatch, kFlagEndOfStream, "second", &encoded);
  EXPECT_EQ(encoded.size(), first_size + kFrameHeaderSize + 6);
  SplitFrame first = Split(encoded.substr(0, first_size));
  EXPECT_TRUE(ValidateFrame(first.header, first.body));
  SplitFrame second = Split(encoded.substr(first_size));
  EXPECT_TRUE(ValidateFrame(second.header, second.body));
}

TEST(FrameCodec, RejectsBadMagic) {
  std::string encoded;
  EncodeFrame(MsgType::kHello, kFlagNone, "hi", &encoded);
  encoded[0] ^= 0x01;
  SplitFrame split = Split(encoded);
  MsgType type;
  uint8_t flags;
  uint32_t body_size;
  EXPECT_FALSE(DecodeFrameHeader(split.header, &type, &flags, &body_size));
}

TEST(FrameCodec, RejectsUnknownType) {
  std::string encoded;
  EncodeFrame(MsgType::kHello, kFlagNone, "", &encoded);
  encoded[4] = static_cast<char>(0xF3);  // type byte outside the enum
  SplitFrame split = Split(encoded);
  MsgType type;
  uint8_t flags;
  uint32_t body_size;
  EXPECT_FALSE(DecodeFrameHeader(split.header, &type, &flags, &body_size));
}

TEST(FrameCodec, RejectsOversizedBodyLength) {
  std::string encoded;
  EncodeFrame(MsgType::kGetNode, kFlagNone, "x", &encoded);
  // Overwrite body_size (offset 8) with kMaxFrameBody + 1.
  std::string patched;
  WireWriter writer(&patched);
  writer.PutU32(kMaxFrameBody + 1);
  encoded.replace(8, 4, patched);
  SplitFrame split = Split(encoded);
  MsgType type;
  uint8_t flags;
  uint32_t body_size;
  EXPECT_FALSE(DecodeFrameHeader(split.header, &type, &flags, &body_size));
}

TEST(FrameCodec, CrcCatchesHeaderCorruption) {
  std::string encoded;
  EncodeFrame(MsgType::kScanBatch, kFlagNone, "body", &encoded);
  encoded[5] ^= 0x01;  // flip kFlagEndOfStream on
  SplitFrame split = Split(encoded);
  MsgType type;
  uint8_t flags;
  uint32_t body_size;
  // Structurally still a plausible header ...
  ASSERT_TRUE(DecodeFrameHeader(split.header, &type, &flags, &body_size));
  // ... but the CRC pins the flag byte.
  EXPECT_FALSE(ValidateFrame(split.header, split.body));
}

TEST(FrameCodec, CrcCatchesBodyCorruption) {
  std::string encoded;
  EncodeFrame(MsgType::kAddNode, kFlagNone, "node-properties", &encoded);
  encoded[kFrameHeaderSize + 3] ^= 0x40;
  SplitFrame split = Split(encoded);
  EXPECT_FALSE(ValidateFrame(split.header, split.body));
}

TEST(FrameCodec, CrcCatchesTruncatedBody) {
  std::string encoded;
  EncodeFrame(MsgType::kAddNode, kFlagNone, "twelve-bytes", &encoded);
  SplitFrame split = Split(encoded);
  split.body.resize(split.body.size() - 1);
  EXPECT_FALSE(ValidateFrame(split.header, split.body));
}

TEST(StatusWire, RoundTripsEveryStatus) {
  for (Status status :
       {Status::kOk, Status::kConflict, Status::kTimeout, Status::kNotFound,
        Status::kNotActive, Status::kUnavailable}) {
    EXPECT_EQ(StatusFromWire(StatusToWire(status)), status)
        << StatusName(status);
  }
  // Unknown wire bytes degrade to kUnavailable, never alias onto kOk.
  EXPECT_EQ(StatusFromWire(0xEE), Status::kUnavailable);
}

}  // namespace
}  // namespace livegraph
