// End-to-end observability tests (docs/OBSERVABILITY.md): registry
// primitives under concurrency, STATS snapshot wire round-trip, counters
// moving under a known op sequence against a live server, and the
// Prometheus /metrics endpoint.
//
// The metrics registry is process-global and these tests share one
// process, so assertions are deltas between snapshots, never absolute
// values.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/livegraph_store.h"
#include "server/graph_server.h"
#include "server/metrics_http.h"
#include "server/net.h"
#include "server/remote_store.h"
#include "server/stats_codec.h"

namespace livegraph {
namespace {

using metrics::Registry;
using metrics::Snapshot;
using metrics::Unit;

TEST(MetricsCounter, StripedAddsSumAcrossThreads) {
  metrics::Counter& counter =
      Registry::Instance().GetCounter("test_counter_striped");
  uint64_t before = counter.Value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value() - before, kThreads * kPerThread);
}

TEST(MetricsRegistry, SameNameReturnsSameInstance) {
  metrics::Counter& a = Registry::Instance().GetCounter("test_same_name");
  metrics::Counter& b = Registry::Instance().GetCounter("test_same_name");
  EXPECT_EQ(&a, &b);
  metrics::Gauge& g1 = Registry::Instance().GetGauge("test_same_gauge");
  metrics::Gauge& g2 = Registry::Instance().GetGauge("test_same_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsHistogram, QuantilesTrackRecordedDistribution) {
  metrics::Histogram& h = Registry::Instance().GetHistogram(
      "test_hist_quantiles", Unit::kNanos);
  for (uint64_t v = 1; v <= 10'000; ++v) h.Record(v * 1000);  // 1us..10ms
  metrics::HistogramSample sample = h.Sample("test_hist_quantiles");
  EXPECT_EQ(sample.count, 10'000u);
  // Log buckets are upper-bound estimates with ~2% resolution.
  EXPECT_NEAR(static_cast<double>(sample.p50), 5e6, 5e6 * 0.05);
  EXPECT_NEAR(static_cast<double>(sample.p99), 9.9e6, 9.9e6 * 0.05);
  EXPECT_LE(sample.p50, sample.p90);
  EXPECT_LE(sample.p90, sample.p99);
  EXPECT_LE(sample.p99, sample.p999);
  EXPECT_DOUBLE_EQ(sample.sum, 5.0005e10);  // sum is exact, only buckets lossy
}

TEST(MetricsHistogram, CrossThreadRecordsAllCounted) {
  metrics::Histogram& h = Registry::Instance().GetHistogram(
      "test_hist_threads", Unit::kCount);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + i % 7);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h.Sample("test_hist_threads").count, kThreads * kPerThread);
}

TEST(MetricsSlowOpRing, RecordsAboveThresholdOldestFirst) {
  auto& ring = metrics::SlowOpRing::Instance();
  ring.Clear();
  uint64_t saved = ring.threshold_nanos();
  uint64_t total_before = 0;
  ring.Snapshot(&total_before);  // all-time count survives Clear()
  ring.set_threshold_nanos(1000);
  EXPECT_FALSE(ring.ShouldRecord(999));
  EXPECT_TRUE(ring.ShouldRecord(1000));
  for (int i = 0; i < 300; ++i) {  // overflow the 256-entry ring
    metrics::SlowOp op;
    op.name = "OP" + std::to_string(i);
    op.total_nanos = 1000 + static_cast<uint64_t>(i);
    ring.Record(std::move(op));
  }
  uint64_t total = 0;
  std::vector<metrics::SlowOp> ops = ring.Snapshot(&total);
  EXPECT_EQ(total - total_before, 300u);
  ASSERT_EQ(ops.size(), 256u);
  EXPECT_EQ(ops.front().name, "OP44");  // oldest surviving entry
  EXPECT_EQ(ops.back().name, "OP299");
  ring.set_threshold_nanos(saved);
  ring.Clear();
}

TEST(StatsCodec, SnapshotRoundTrips) {
  Snapshot snapshot;
  snapshot.mono_nanos = 123456789;
  snapshot.wall_unix_micros = 1'700'000'000'000'000ull;
  snapshot.build_info = "sha=\"abc\",type=\"Debug\",flags=\"none\"";
  snapshot.counters = {{"c_one", 1}, {"c{op=\"X\"}", ~uint64_t{0}}};
  snapshot.gauges = {{"g_neg", -42}, {"g_pos", 7}};
  metrics::HistogramSample h;
  h.name = "h_lat";
  h.unit = Unit::kNanos;
  h.count = 10;
  h.sum = 123.5;
  h.p50 = 1;
  h.p90 = 2;
  h.p99 = 3;
  h.p999 = 4;
  snapshot.histograms = {h};
  snapshot.slow_ops_total = 99;
  metrics::SlowOp slow;
  slow.name = "COMMIT";
  slow.shard = 3;
  slow.epoch = 77;
  slow.total_nanos = 5'000'000;
  slow.stage_nanos[0] = 1;
  slow.stage_nanos[3] = 4;
  slow.wall_unix_micros = 42;
  metrics::SlowOp unsharded;
  unsharded.name = "GET_NODE";
  unsharded.shard = -1;
  snapshot.slow_ops = {slow, unsharded};

  std::string wire;
  EncodeStats(snapshot, &wire);
  Snapshot decoded;
  ASSERT_TRUE(DecodeStats(wire, &decoded));

  EXPECT_EQ(decoded.mono_nanos, snapshot.mono_nanos);
  EXPECT_EQ(decoded.wall_unix_micros, snapshot.wall_unix_micros);
  EXPECT_EQ(decoded.build_info, snapshot.build_info);
  EXPECT_EQ(decoded.counters, snapshot.counters);
  EXPECT_EQ(decoded.gauges, snapshot.gauges);
  ASSERT_EQ(decoded.histograms.size(), 1u);
  EXPECT_EQ(decoded.histograms[0].name, "h_lat");
  EXPECT_EQ(decoded.histograms[0].unit, Unit::kNanos);
  EXPECT_EQ(decoded.histograms[0].count, 10u);
  EXPECT_DOUBLE_EQ(decoded.histograms[0].sum, 123.5);
  EXPECT_EQ(decoded.histograms[0].p999, 4u);
  EXPECT_EQ(decoded.slow_ops_total, 99u);
  ASSERT_EQ(decoded.slow_ops.size(), 2u);
  EXPECT_EQ(decoded.slow_ops[0].name, "COMMIT");
  EXPECT_EQ(decoded.slow_ops[0].shard, 3);
  EXPECT_EQ(decoded.slow_ops[0].epoch, 77);
  EXPECT_EQ(decoded.slow_ops[0].stage_nanos[3], 4u);
  EXPECT_EQ(decoded.slow_ops[1].shard, -1);

  // Truncations and a bumped version must be rejected, not misparsed.
  Snapshot scratch;
  EXPECT_FALSE(DecodeStats(std::string_view(wire).substr(0, wire.size() - 1),
                           &scratch));
  EXPECT_FALSE(DecodeStats(std::string_view(wire).substr(1), &scratch));
  std::string wrong_version = wire;
  wrong_version[0] = static_cast<char>(kStatsFormatVersion + 1);
  EXPECT_FALSE(DecodeStats(wrong_version, &scratch));
}

/// Minimal Prometheus text-format validator: every non-comment line is
/// `name{labels} value` or `name value`, every series' family has exactly
/// one preceding # TYPE, and families are not interleaved.
void ValidatePrometheusText(const std::string& body) {
  std::istringstream lines(body);
  std::string line;
  std::map<std::string, std::string> family_type;
  std::set<std::string> closed_families;
  std::string current_family;
  int series = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      ASSERT_TRUE(fields >> family >> type) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "summary" || type == "untyped")
          << line;
      ASSERT_EQ(family_type.count(family), 0u)
          << "duplicate # TYPE for " << family;
      family_type[family] = type;
      if (!current_family.empty()) closed_families.insert(current_family);
      ASSERT_EQ(closed_families.count(family), 0u)
          << "family " << family << " interleaved";
      current_family = family;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    // name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    size_t value_at = line.rfind(' ');
    ASSERT_NE(value_at, std::string::npos) << line;
    ASSERT_GT(value_at + 1, name_end) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + value_at + 1, &end);
    ASSERT_EQ(*end, '\0') << "unparsable value in: " << line;
    if (line[name_end] == '{') {
      ASSERT_EQ(line[value_at - 1], '}') << line;
    }
    ++series;
  }
  EXPECT_GT(series, 0);
}

TEST(Prometheus, RenderedSnapshotParses) {
  // Touch at least one of each kind so the render covers all paths.
  Registry::Instance().GetCounter("test_prom_counter{op=\"X\"}").Add(3);
  Registry::Instance().GetGauge("test_prom_gauge").Set(-5);
  Registry::Instance()
      .GetHistogram("test_prom_hist", Unit::kNanos)
      .Record(1'500'000);
  Snapshot snapshot = Registry::Instance().Collect();
  std::string body;
  metrics::RenderPrometheus(snapshot, &body);
  ValidatePrometheusText(body);
  EXPECT_NE(body.find("test_prom_counter{op=\"X\"} 3"), std::string::npos);
  EXPECT_NE(body.find("test_prom_gauge -5"), std::string::npos);
  // kNanos histograms render as _seconds summaries.
  EXPECT_NE(body.find("test_prom_hist_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(body.find("test_prom_hist_seconds_count 1"), std::string::npos);
  EXPECT_NE(body.find("livegraph_build_info{"), std::string::npos);
}

class MetricsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ = std::filesystem::temp_directory_path() /
                "metrics_test_wal.log";
    std::filesystem::remove(wal_path_);
    GraphOptions options;
    options.region_reserve = size_t{1} << 30;
    options.max_vertices = 1 << 18;
    options.wal_path = wal_path_.string();
    options.fsync_wal = false;  // tmp storage; the WAL metrics still move
    store_ = std::make_unique<LiveGraphStore>(options);
    server_ = std::make_unique<GraphServer>(*store_, GraphServer::Options{});
    ASSERT_TRUE(server_->Start());
    remote_ = RemoteStore::Connect("127.0.0.1", server_->port());
    ASSERT_NE(remote_, nullptr);
  }

  void TearDown() override {
    remote_.reset();
    server_->Stop();
    server_.reset();
    store_.reset();
    std::filesystem::remove(wal_path_);
  }

  std::filesystem::path wal_path_;
  std::unique_ptr<LiveGraphStore> store_;
  std::unique_ptr<GraphServer> server_;
  std::unique_ptr<RemoteStore> remote_;
};

TEST_F(MetricsServerTest, CountersMoveUnderKnownOpSequence) {
  Snapshot before;
  ASSERT_TRUE(remote_->Stats(&before));

  // A known sequence: 3 write txns of 1 node + 1 self-link each, then
  // 2 read txns of 1 GetNode each.
  vertex_t first = 0;
  for (int i = 0; i < 3; ++i) {
    auto txn = remote_->BeginTxn();
    StatusOr<vertex_t> added = txn->AddNode("n");
    ASSERT_TRUE(added.ok());
    if (i == 0) first = *added;
    ASSERT_TRUE(txn->AddLink(*added, 1, *added, "e").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 0; i < 2; ++i) {
    auto read = remote_->BeginReadTxn();
    EXPECT_TRUE(read->GetNode(first).ok());
  }

  Snapshot after;
  ASSERT_TRUE(remote_->Stats(&after));

  auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_EQ(delta("livegraph_server_requests_total{op=\"BEGIN_TXN\"}"), 3u);
  EXPECT_EQ(delta("livegraph_server_requests_total{op=\"ADD_NODE\"}"), 3u);
  EXPECT_EQ(delta("livegraph_server_requests_total{op=\"ADD_LINK\"}"), 3u);
  EXPECT_EQ(delta("livegraph_server_requests_total{op=\"COMMIT\"}"), 3u);
  EXPECT_EQ(delta("livegraph_server_requests_total{op=\"GET_NODE\"}"), 2u);
  EXPECT_EQ(delta("livegraph_commit_txns_total"), 3u);
  EXPECT_EQ(delta("livegraph_wal_appends_total"), 3u);
  EXPECT_GT(delta("livegraph_wal_bytes_total"), 0u);
  EXPECT_GT(delta("livegraph_server_rx_bytes_total"), 0u);
  EXPECT_GT(delta("livegraph_server_tx_bytes_total"), 0u);
  EXPECT_EQ(after.gauge("livegraph_server_open_txns"), 0);

  const metrics::HistogramSample* commit_latency =
      after.histogram("livegraph_server_op_latency{op=\"COMMIT\"}");
  ASSERT_NE(commit_latency, nullptr);
  EXPECT_GE(commit_latency->count, 3u);
  EXPECT_GT(commit_latency->p50, 0u);
  EXPECT_FALSE(after.build_info.empty());
  EXPECT_GT(after.mono_nanos, 0u);
}

TEST_F(MetricsServerTest, HttpEndpointServesValidExposition) {
  MetricsHttpServer http;
  ASSERT_TRUE(http.Start("127.0.0.1", 0));

  auto fetch = [&](const std::string& request, std::string* response) {
    Socket conn = ConnectTcp("127.0.0.1", http.port());
    ASSERT_TRUE(conn.valid());
    conn.SetRecvTimeout(5000);
    ASSERT_TRUE(conn.WriteFull(request.data(), request.size()));
    char chunk[4096];
    int64_t n;
    while ((n = conn.ReadSome(chunk, sizeof(chunk))) > 0) {
      response->append(chunk, static_cast<size_t>(n));
    }
  };

  // Generate some traffic so the scrape carries server families.
  auto txn = remote_->BeginTxn();
  ASSERT_TRUE(txn->AddNode("n").ok());
  ASSERT_TRUE(txn->Commit().ok());

  std::string response;
  fetch("GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n", &response);
  ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  ASSERT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string body = response.substr(body_at + 4);
  ValidatePrometheusText(body);
  EXPECT_NE(body.find("livegraph_server_requests_total{op=\"COMMIT\"}"),
            std::string::npos);
  EXPECT_NE(body.find("livegraph_commit_txns_total"), std::string::npos);
  EXPECT_NE(body.find("livegraph_build_info{"), std::string::npos);

  std::string not_found;
  fetch("GET /nope HTTP/1.0\r\n\r\n", &not_found);
  EXPECT_NE(not_found.find("404"), std::string::npos);
  std::string bad_method;
  fetch("POST /metrics HTTP/1.0\r\n\r\n", &bad_method);
  EXPECT_NE(bad_method.find("405"), std::string::npos);

  http.Stop();
}

TEST_F(MetricsServerTest, StatsCarriesSlowOps) {
  auto& ring = metrics::SlowOpRing::Instance();
  ring.Clear();
  uint64_t saved = ring.threshold_nanos();
  ring.set_threshold_nanos(1);  // everything is slow now

  auto txn = remote_->BeginTxn();
  ASSERT_TRUE(txn->AddNode("n").ok());
  ASSERT_TRUE(txn->Commit().ok());

  Snapshot snapshot;
  ASSERT_TRUE(remote_->Stats(&snapshot));
  ring.set_threshold_nanos(saved);
  ring.Clear();

  EXPECT_GT(snapshot.slow_ops_total, 0u);
  ASSERT_FALSE(snapshot.slow_ops.empty());
  bool saw_commit = false;
  for (const metrics::SlowOp& op : snapshot.slow_ops) {
    EXPECT_FALSE(op.name.empty());
    if (op.name == "COMMIT") saw_commit = true;
  }
  EXPECT_TRUE(saw_commit);
}

}  // namespace
}  // namespace livegraph
