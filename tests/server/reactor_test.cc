// Reactor-frontend integration tests over real loopback TCP: in-connection
// pipelining of buffered frames, the client-side Pipeline batching API,
// idle-connection reaping, output backpressure on streaming scans,
// graceful drain (both transports), and the mutation-offload regression —
// contended vertex locks on a single event loop must not ride to the
// engine's deadlock timeout. Protocol semantics shared with the blocking
// transport live in remote_store_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/livegraph_store.h"
#include "server/graph_server.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/remote_store.h"
#include "server/wire.h"
#include "util/metrics.h"

namespace livegraph {
namespace {

GraphOptions SmallGraphOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  return options;
}

// CI hook: LG_TEST_REACTORS pins the event-loop count for every harness
// that does not pin one itself (the tsan job runs this suite at 2).
int ResolveReactors(int requested) {
  const char* env = std::getenv("LG_TEST_REACTORS");
  if (requested == -1 && env != nullptr) return std::atoi(env);
  return requested;
}

// Engine + server (reactor mode unless the options say otherwise) +
// connected client.
struct Harness {
  explicit Harness(GraphServer::Options options = {}) {
    options.reactors = ResolveReactors(options.reactors);
    engine = std::make_unique<LiveGraphStore>(SmallGraphOptions());
    server = std::make_unique<GraphServer>(*engine, options);
    EXPECT_TRUE(server->Start());
    client = RemoteStore::Connect("127.0.0.1", server->port());
    EXPECT_NE(client, nullptr);
  }
  ~Harness() {
    client.reset();
    server->Stop();
  }

  std::unique_ptr<Store> engine;
  std::unique_ptr<GraphServer> server;
  std::unique_ptr<RemoteStore> client;
};

// Raw protocol socket: connect + Hello handshake.
Socket RawHello(uint16_t port) {
  Socket sock = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(sock.valid());
  sock.SetRecvTimeout(10'000);
  std::string body;
  WireWriter writer(&body);
  writer.PutU32(kProtocolVersion);
  std::string scratch;
  EXPECT_TRUE(sock.WriteFrame(MsgType::kHello, kFlagNone, body, &scratch));
  Frame reply;
  EXPECT_TRUE(sock.ReadFrame(&reply));
  EXPECT_EQ(reply.type, MsgType::kReply);
  return sock;
}

// Reply body begins with a status byte; returns it (or kUnavailable on a
// malformed body) and leaves `reader` positioned after it.
Status ReplyStatus(const Frame& frame) {
  WireReader reader(frame.body);
  uint8_t wire = 0;
  if (!reader.GetU8(&wire)) return Status::kUnavailable;
  return StatusFromWire(wire);
}

// The tentpole behavior, pinned at the protocol level: a client that ships
// a whole transaction's frames in ONE write gets every reply, in order,
// without waiting between requests — the reactor drains every complete
// buffered frame before returning to epoll.
TEST(Reactor, PipelinesBufferedFramesInOneWrite) {
  Harness harness;
  ASSERT_GE(harness.server->resolved_reactors(), 1);
  Socket sock = RawHello(harness.server->port());

  // BeginTxn now, so the batch below can reference the txn id.
  std::string scratch;
  ASSERT_TRUE(sock.WriteFrame(MsgType::kBeginTxn, kFlagNone, "", &scratch));
  Frame reply;
  ASSERT_TRUE(sock.ReadFrame(&reply));
  ASSERT_EQ(ReplyStatus(reply), Status::kOk);
  WireReader begin_reader(reply.body);
  uint8_t status_byte = 0;
  uint64_t txn_id = 0;
  ASSERT_TRUE(begin_reader.GetU8(&status_byte));
  ASSERT_TRUE(begin_reader.GetU64(&txn_id));

  // One buffer: 16 AddNode frames plus the Commit, a single send.
  constexpr int kOps = 16;
  std::string batch;
  for (int i = 0; i < kOps; ++i) {
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id);
    writer.PutBytes("pipelined-" + std::to_string(i));
    EncodeFrame(MsgType::kAddNode, kFlagNone, body, &batch);
  }
  {
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id);
    EncodeFrame(MsgType::kCommit, kFlagNone, body, &batch);
  }
  ASSERT_TRUE(sock.WriteFull(batch.data(), batch.size()));

  // Replies come back strictly in request order.
  for (int i = 0; i < kOps + 1; ++i) {
    ASSERT_TRUE(sock.ReadFrame(&reply)) << "reply " << i;
    EXPECT_EQ(reply.type, MsgType::kReply);
    EXPECT_EQ(ReplyStatus(reply), Status::kOk) << "reply " << i;
  }
  EXPECT_EQ(harness.engine->BeginReadTxn()->VertexCount(),
            static_cast<vertex_t>(kOps));
}

TEST(Reactor, PipelineAppliesWritesOnCommit) {
  Harness harness;
  vertex_t a = harness.client->AddNode("a");
  vertex_t b = harness.client->AddNode("b");
  ASSERT_NE(a, kNullVertex);
  ASSERT_NE(b, kNullVertex);

  auto pipeline = harness.client->NewPipeline();
  ASSERT_TRUE(pipeline->ok());
  constexpr int kLinks = 64;
  for (int i = 0; i < kLinks; ++i) {
    pipeline->AddLink(a, static_cast<label_t>(i % 4), b,
                      "edge-" + std::to_string(i));
  }
  pipeline->UpdateNode(a, "a-rewritten");
  EXPECT_EQ(pipeline->pending(), static_cast<size_t>(kLinks + 1));

  std::vector<Status> statuses;
  ASSERT_TRUE(pipeline->Flush(&statuses));
  ASSERT_EQ(statuses.size(), static_cast<size_t>(kLinks + 1));
  for (Status s : statuses) EXPECT_EQ(s, Status::kOk);
  ASSERT_TRUE(pipeline->Commit().ok());

  // Everything landed in the engine.
  StatusOr<std::string> node = harness.engine->GetNode(a);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, "a-rewritten");
  StatusOr<std::string> edge = harness.engine->GetLink(a, 3, b);
  ASSERT_TRUE(edge.ok());
}

TEST(Reactor, PipelineAbortDiscardsQueuedWrites) {
  Harness harness;
  vertex_t a = harness.client->AddNode("a");
  vertex_t b = harness.client->AddNode("b");

  auto pipeline = harness.client->NewPipeline();
  ASSERT_TRUE(pipeline->ok());
  pipeline->AddLink(a, 0, b, "doomed");
  ASSERT_TRUE(pipeline->Flush());
  pipeline->Abort();

  EXPECT_EQ(harness.engine->GetLink(a, 0, b).status(), Status::kNotFound);
  // The pooled connection survived the abort.
  EXPECT_NE(harness.client->AddNode("after-abort"), kNullVertex);
}

// Satellite: connections silent past idle_timeout_ms are closed (their
// open transactions aborted) and counted.
TEST(Reactor, IdleTimeoutClosesSilentConnections) {
  GraphServer::Options options;
  options.idle_timeout_ms = 100;
  Harness harness(options);
  ASSERT_GE(harness.server->resolved_reactors(), 1);

  uint64_t closed_before = metrics::Registry::Instance().Collect().counter(
      "livegraph_server_idle_closed_total");

  Socket sock = RawHello(harness.server->port());
  // Go silent. The reactor must close us; the blocking read sees EOF well
  // inside the 10s receive deadline RawHello installed.
  Frame frame;
  EXPECT_FALSE(sock.ReadFrame(&frame));

  uint64_t closed_after = metrics::Registry::Instance().Collect().counter(
      "livegraph_server_idle_closed_total");
  EXPECT_GT(closed_after, closed_before);
}

// Satellite: output backpressure. Watermarks far below one scan batch
// force the park/resume cycle (EPOLLIN off above high water, scan parked;
// EPOLLOUT drain below low water resumes) — the stream must still deliver
// every edge, in order, with properties tracking their edges.
TEST(Reactor, BackpressuredScanStreamsCompletely) {
  GraphServer::Options options;
  options.scan_batch_edges = 8;
  options.write_high_water = 4096;
  options.write_low_water = 1024;
  Harness harness(options);
  ASSERT_GE(harness.server->resolved_reactors(), 1);

  vertex_t hub = harness.client->AddNode("hub");
  constexpr int kEdges = 300;
  const std::string pad(128, 'x');  // ~40 KiB total, 10x the high water
  std::vector<vertex_t> dsts;
  for (int i = 0; i < kEdges; ++i) {
    vertex_t d = harness.client->AddNode("leaf");
    ASSERT_TRUE(
        harness.client->AddLink(hub, 0, d, pad + std::to_string(i)).ok());
    dsts.push_back(d);
  }

  auto read = harness.client->BeginReadTxn();
  int seen = 0;
  for (EdgeCursor c = read->ScanLinks(hub, 0); c.Valid(); c.Next(), ++seen) {
    // Newest-first: edge i of the scan is insertion kEdges-1-i.
    int original = kEdges - 1 - seen;
    EXPECT_EQ(c.dst(), dsts[original]);
    EXPECT_EQ(c.properties(), pad + std::to_string(original));
  }
  EXPECT_EQ(seen, kEdges);
}

// Regression for the event-loop lock-wait deadlock: with ONE reactor, two
// connections hammering the same vertex put the lock holder's releasing
// Commit on the same loop as the waiter. Without mutation offload every
// contended acquisition rides to the engine's 50ms deadlock timeout and
// fails with kTimeout (which RunWrite does not retry); with it, all ops
// succeed.
TEST(Reactor, ContendedWritesOnOneLoopDoNotTimeout) {
  GraphServer::Options options;
  options.reactors = 1;
  Harness harness(options);
  ASSERT_EQ(harness.server->resolved_reactors(), 1);

  vertex_t hot = harness.client->AddNode("hot");
  vertex_t other = harness.client->AddNode("other");
  auto second = RemoteStore::Connect("127.0.0.1", harness.server->port());
  ASSERT_NE(second, nullptr);

  constexpr int kOpsPerClient = 50;
  std::atomic<int> failures{0};
  auto hammer = [&](RemoteStore* client, int salt) {
    for (int i = 0; i < kOpsPerClient; ++i) {
      if (!client->AddLink(hot, 0, other, std::to_string(salt * 1000 + i))
               .ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread t1(hammer, harness.client.get(), 1);
  std::thread t2(hammer, second.get(), 2);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
}

// Satellite: the reactor exports its event-loop telemetry.
TEST(Reactor, ExportsEventLoopMetrics) {
  Harness harness;
  ASSERT_GE(harness.server->resolved_reactors(), 1);
  uint64_t wakeups_before = metrics::Registry::Instance().Collect().counter(
      "livegraph_server_reactor_wakeups_total");

  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(harness.client->AddNode("tick"), kNullVertex);
  }

  metrics::Snapshot snapshot = metrics::Registry::Instance().Collect();
  EXPECT_GT(snapshot.counter("livegraph_server_reactor_wakeups_total"),
            wakeups_before);
  EXPECT_NE(snapshot.histogram("livegraph_server_frames_per_wakeup"),
            nullptr);
  EXPECT_NE(snapshot.histogram("livegraph_server_pending_write_bytes"),
            nullptr);
  // The per-reactor connection gauge counts our pooled client connection.
  int64_t conns = 0;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("livegraph_server_reactor_connections", 0) == 0) {
      conns += value;
    }
  }
  EXPECT_GE(conns, 1);
}

// Satellite: graceful drain. Both transports must stop accepting
// immediately but let in-flight sessions finish before teardown.
void DrainLetsInflightSessionsFinish(int reactors) {
  auto engine = std::make_unique<LiveGraphStore>(SmallGraphOptions());
  GraphServer::Options options;
  options.reactors = ResolveReactors(reactors);
  auto server = std::make_unique<GraphServer>(*engine, options);
  ASSERT_TRUE(server->Start());
  uint16_t port = server->port();

  auto client = RemoteStore::Connect("127.0.0.1", port);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(client->AddNode("pre-drain"), kNullVertex);

  // The client finishes its work and disconnects while the drain waits.
  std::atomic<bool> finished{false};
  std::thread worker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    for (int i = 0; i < 10; ++i) {
      EXPECT_NE(client->AddNode("during-drain-" + std::to_string(i)),
                kNullVertex);
    }
    finished.store(true);
    client.reset();  // last connection gone -> drain completes
  });

  server->Drain(/*deadline_ms=*/10'000);
  worker.join();

  // The drain waited for the session rather than cutting it off...
  EXPECT_TRUE(finished.load());
  EXPECT_EQ(server->active_connections(), 0u);
  EXPECT_EQ(engine->BeginReadTxn()->VertexCount(), 11);
  // ...and the listener is gone: new clients are refused.
  EXPECT_EQ(RemoteStore::Connect("127.0.0.1", port), nullptr);
  server->Stop();
}

TEST(Reactor, DrainLetsInflightSessionsFinish) {
  DrainLetsInflightSessionsFinish(/*reactors=*/-1);
}

TEST(BlockingServer, DrainLetsInflightSessionsFinish) {
  DrainLetsInflightSessionsFinish(/*reactors=*/0);
}

// A drain with an unresponsive client still terminates: the deadline
// bounds the wait, after which the remaining connection is torn down.
TEST(Reactor, DrainDeadlineBoundsUnresponsiveClients) {
  auto engine = std::make_unique<LiveGraphStore>(SmallGraphOptions());
  GraphServer::Options options;
  auto server = std::make_unique<GraphServer>(*engine, options);
  ASSERT_TRUE(server->Start());

  Socket idle = RawHello(server->port());
  auto start = std::chrono::steady_clock::now();
  server->Drain(/*deadline_ms=*/200);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(server->active_connections(), 0u);
  // The forced teardown closed our socket.
  Frame frame;
  EXPECT_FALSE(idle.ReadFrame(&frame));
}

}  // namespace
}  // namespace livegraph
