#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace livegraph {
namespace {

TEST(Zipf, SamplesInRange) {
  ZipfSampler zipf(1000, 0.99);
  Xorshift rng(1);
  for (int i = 0; i < 100'000; ++i) {
    uint64_t s = zipf.Sample(rng);
    ASSERT_LT(s, 1000u);
  }
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfSampler zipf(1'000'000, 0.99);
  Xorshift rng(2);
  int head_hits = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 100) head_hits++;
  }
  // Under theta=0.99 the top-100 of a million items draw >20% of accesses;
  // uniform would give 0.01%.
  EXPECT_GT(head_hits, kSamples / 5);
}

TEST(Zipf, RankZeroIsHottest) {
  ZipfSampler zipf(10'000, 0.99);
  Xorshift rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    uint64_t s = zipf.Sample(rng);
    if (s < 10) counts[static_cast<size_t>(s)]++;
  }
  for (int r = 1; r < 10; ++r) {
    EXPECT_GE(counts[0], counts[static_cast<size_t>(r)])
        << "rank 0 must dominate rank " << r;
  }
}

TEST(ScrambledZipf, SpreadsHotKeys) {
  ScrambledZipf zipf(1'000'000, 0.99, /*seed=*/9);
  Xorshift rng(4);
  // The hottest scrambled IDs must not all cluster in the low ID range.
  int low_ids = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 1000) low_ids++;
  }
  EXPECT_LT(low_ids, kSamples / 10);
}

TEST(ScrambledZipf, Deterministic) {
  ScrambledZipf a(1000, 0.9, 5), b(1000, 0.9, 5);
  Xorshift ra(6), rb(6);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Sample(ra), b.Sample(rb));
  }
}

class ZipfDomainTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZipfDomainTest, InBoundsAcrossDomains) {
  uint64_t n = GetParam();
  ZipfSampler zipf(n, 0.99);
  ScrambledZipf scrambled(n, 0.99);
  Xorshift rng(n);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(zipf.Sample(rng), n);
    ASSERT_LT(scrambled.Sample(rng), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, ZipfDomainTest,
                         ::testing::Values(1, 2, 10, 1000, 1 << 20));

}  // namespace
}  // namespace livegraph
