#include "util/futex_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace livegraph {
namespace {

TEST(FutexLock, BasicLockUnlock) {
  FutexLock lock;
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_TRUE(lock.TryLockFor(0));
  EXPECT_TRUE(lock.IsLocked());
  lock.Unlock();
  EXPECT_FALSE(lock.IsLocked());
}

TEST(FutexLock, TryLockFailsWhenHeld) {
  FutexLock lock;
  ASSERT_TRUE(lock.TryLockFor(0));
  EXPECT_FALSE(lock.TryLockFor(0));
  EXPECT_FALSE(lock.TryLockFor(1'000'000));  // 1 ms timeout expires
  lock.Unlock();
  EXPECT_TRUE(lock.TryLockFor(0));
  lock.Unlock();
}

TEST(FutexLock, TimeoutIsBounded) {
  FutexLock lock;
  ASSERT_TRUE(lock.TryLockFor(0));
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(lock.TryLockFor(20'000'000));  // 20 ms
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  lock.Unlock();
}

TEST(FutexLock, WaiterWakesOnUnlock) {
  FutexLock lock;
  ASSERT_TRUE(lock.TryLockFor(0));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    if (lock.TryLockFor(2'000'000'000)) {  // generous 2 s budget
      acquired.store(true);
      lock.Unlock();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.Unlock();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

template <typename LockType>
void MutualExclusionStress() {
  LockType lock;
  int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        while (!lock.TryLockFor(1'000'000'000)) {
        }
        counter++;  // data race iff mutual exclusion is broken (TSan/ASan)
        lock.Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(FutexLock, MutualExclusionStress) { MutualExclusionStress<FutexLock>(); }
TEST(SpinLock, MutualExclusionStress) { MutualExclusionStress<SpinLock>(); }

}  // namespace
}  // namespace livegraph
