// Failpoint registry: spec parsing, trigger semantics, determinism.
// Everything here is gated on the fault build — in a normal build the
// registry compiles to no-ops and there is nothing to test.
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

namespace livegraph {
namespace {

#if defined(LIVEGRAPH_FAULTS_ENABLED)

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::Clear(); }
  void TearDown() override { faults::Clear(); }
};

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(faults::Enabled());
  EXPECT_FALSE(LIVEGRAPH_FAULT("wal.append"));
}

TEST_F(FaultInjectionTest, ErrorKindFiresEveryHit) {
  ASSERT_TRUE(faults::Configure("wal.append=error:ENOSPC"));
  EXPECT_TRUE(faults::Enabled());
  for (int i = 0; i < 3; ++i) {
    faults::Action action = LIVEGRAPH_FAULT("wal.append");
    ASSERT_TRUE(action);
    EXPECT_EQ(action.kind, faults::Action::Kind::kError);
    EXPECT_EQ(action.err, ENOSPC);
  }
  // Unconfigured points stay silent.
  EXPECT_FALSE(LIVEGRAPH_FAULT("wal.fdatasync"));
  EXPECT_EQ(faults::HitCount("wal.append"), 3u);
}

TEST_F(FaultInjectionTest, ErrnoNamesAndNumbers) {
  ASSERT_TRUE(faults::Configure(
      "a=error:EIO;b=error:EPIPE;c=error:EDQUOT;d=error:13"));
  EXPECT_EQ(LIVEGRAPH_FAULT("a").err, EIO);
  EXPECT_EQ(LIVEGRAPH_FAULT("b").err, EPIPE);
  EXPECT_EQ(LIVEGRAPH_FAULT("c").err, EDQUOT);
  EXPECT_EQ(LIVEGRAPH_FAULT("d").err, 13);
}

TEST_F(FaultInjectionTest, ShortWriteCarriesByteBudget) {
  ASSERT_TRUE(faults::Configure("net.send=short:4"));
  faults::Action action = LIVEGRAPH_FAULT("net.send");
  ASSERT_TRUE(action);
  EXPECT_EQ(action.kind, faults::Action::Kind::kShortWrite);
  EXPECT_EQ(action.arg, 4u);
}

TEST_F(FaultInjectionTest, EveryTriggerFiresOnMultiplesOnly) {
  ASSERT_TRUE(faults::Configure("p=error:EIO@every=3"));
  for (int hit = 1; hit <= 9; ++hit) {
    bool fired = static_cast<bool>(LIVEGRAPH_FAULT("p"));
    EXPECT_EQ(fired, hit % 3 == 0) << "hit " << hit;
  }
}

TEST_F(FaultInjectionTest, AfterOnceFiresExactlyOnce) {
  ASSERT_TRUE(faults::Configure("p=error:EIO@after=2,once"));
  EXPECT_FALSE(LIVEGRAPH_FAULT("p"));  // hit 1
  EXPECT_FALSE(LIVEGRAPH_FAULT("p"));  // hit 2
  EXPECT_TRUE(LIVEGRAPH_FAULT("p"));   // hit 3: fires
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(LIVEGRAPH_FAULT("p")) << "once means once";
  }
  EXPECT_EQ(faults::HitCount("p"), 8u) << "hits count whether or not fired";
}

TEST_F(FaultInjectionTest, ProbabilityOneAlwaysFires) {
  ASSERT_TRUE(faults::Configure("p=error:EIO@prob=1.0"));
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(LIVEGRAPH_FAULT("p"));
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerPointName) {
  // Same point name, same spec, fresh registry: the per-point PRNG is
  // seeded from the name, so the firing pattern must replay exactly.
  auto pattern = [] {
    std::string out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(LIVEGRAPH_FAULT("coin") ? '1' : '0');
    }
    return out;
  };
  ASSERT_TRUE(faults::Configure("coin=error:EIO@prob=0.5"));
  std::string first = pattern();
  ASSERT_TRUE(faults::Configure("coin=error:EIO@prob=0.5"));
  EXPECT_EQ(pattern(), first);
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);
}

TEST_F(FaultInjectionTest, DelayReturnsNoActionToTheSite) {
  ASSERT_TRUE(faults::Configure("p=delay:1"));
  // The sleep happens inside Evaluate; the site proceeds normally.
  EXPECT_FALSE(LIVEGRAPH_FAULT("p"));
  EXPECT_EQ(faults::HitCount("p"), 1u);
}

TEST_F(FaultInjectionTest, MalformedSpecsRejectedAndPreviousKept) {
  ASSERT_TRUE(faults::Configure("keep=error:EIO"));
  std::string error;
  EXPECT_FALSE(faults::Configure("nokind", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(faults::Configure("p=warp", &error));
  EXPECT_FALSE(faults::Configure("p=error:EBOGUS", &error));
  EXPECT_FALSE(faults::Configure("p=error:EIO@sometimes", &error));
  EXPECT_FALSE(faults::Configure("p=error:EIO@prob=2.0", &error));
  EXPECT_FALSE(faults::Configure("p=error:EIO@prob=0", &error));
  EXPECT_FALSE(faults::Configure("=error:EIO", &error));
  // The earlier good configuration survived every failed attempt.
  EXPECT_TRUE(LIVEGRAPH_FAULT("keep"));
}

TEST_F(FaultInjectionTest, ConfigureReplacesAndClearDisables) {
  ASSERT_TRUE(faults::Configure("old=error:EIO"));
  ASSERT_TRUE(faults::Configure("new=error:ENOSPC"));
  EXPECT_FALSE(LIVEGRAPH_FAULT("old")) << "Configure replaces, not merges";
  EXPECT_TRUE(LIVEGRAPH_FAULT("new"));
  faults::Clear();
  EXPECT_FALSE(faults::Enabled());
  EXPECT_FALSE(LIVEGRAPH_FAULT("new"));
}

TEST_F(FaultInjectionTest, EmptySpecClearsEverything) {
  ASSERT_TRUE(faults::Configure("p=error:EIO"));
  ASSERT_TRUE(faults::Configure(""));
  EXPECT_FALSE(faults::Enabled());
}

#else  // !LIVEGRAPH_FAULTS_ENABLED

TEST(FaultInjectionTest, CompiledOut) {
  // The no-op API must still be callable from unconditional code.
  EXPECT_TRUE(faults::Configure("anything=error:EIO"));
  EXPECT_FALSE(faults::Enabled());
  EXPECT_FALSE(LIVEGRAPH_FAULT("wal.append"));
  GTEST_SKIP() << "fault injection not compiled in "
               << "(build with -DLIVEGRAPH_FAULTS=ON)";
}

#endif  // LIVEGRAPH_FAULTS_ENABLED

}  // namespace
}  // namespace livegraph
