#include "util/mmap_region.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace livegraph {
namespace {

TEST(MmapRegion, AnonymousReadWrite) {
  MmapRegion region = MmapRegion::CreateAnonymous(1 << 20);
  ASSERT_NE(region.data(), nullptr);
  EXPECT_GE(region.reserved(), size_t{1} << 20);
  std::memset(region.data(), 0xAB, 4096);
  EXPECT_EQ(region.data()[0], 0xAB);
  EXPECT_EQ(region.data()[4095], 0xAB);
  // Anonymous pages start zeroed.
  EXPECT_EQ(region.data()[8192], 0);
}

TEST(MmapRegion, FileBackedPersists) {
  auto path = std::filesystem::temp_directory_path() / "lg_mmap_test.bin";
  std::filesystem::remove(path);
  {
    MmapRegion region = MmapRegion::CreateFileBacked(path.string(), 1 << 22);
    std::memcpy(region.data(), "hello", 5);
    region.EnsureCommitted(1 << 21);
    std::memcpy(region.data() + (1 << 20), "world", 5);
    region.Sync();
  }
  {
    MmapRegion region = MmapRegion::CreateFileBacked(path.string(), 1 << 22);
    EXPECT_EQ(std::memcmp(region.data(), "hello", 5), 0);
    EXPECT_EQ(std::memcmp(region.data() + (1 << 20), "world", 5), 0);
  }
  std::filesystem::remove(path);
}

TEST(MmapRegion, EnsureCommittedGrowsFile) {
  auto path = std::filesystem::temp_directory_path() / "lg_mmap_grow.bin";
  std::filesystem::remove(path);
  MmapRegion region = MmapRegion::CreateFileBacked(path.string(), 1 << 24);
  size_t before = region.committed();
  region.EnsureCommitted(before + 1);
  EXPECT_GT(region.committed(), before);
  EXPECT_GE(std::filesystem::file_size(path), region.committed());
  std::filesystem::remove(path);
}

TEST(MmapRegion, MoveTransfersOwnership) {
  MmapRegion a = MmapRegion::CreateAnonymous(1 << 16);
  uint8_t* data = a.data();
  MmapRegion b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(a.data(), nullptr);
}

}  // namespace
}  // namespace livegraph
