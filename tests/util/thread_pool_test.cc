#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace livegraph {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kN = 100'000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  ParallelFor(10, 10, 4, [&](int64_t, int64_t) { calls++; });
  ParallelFor(10, 5, 4, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ParallelFor, ImbalancedWorkCompletes) {
  // Power-law-ish imbalance: one chunk is 1000x heavier.
  std::atomic<int64_t> total{0};
  ParallelFor(
      0, 64, 8,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          int64_t work = (i == 0) ? 1'000'000 : 1'000;
          int64_t acc = 0;
          for (int64_t j = 0; j < work; ++j) acc += j;
          total += acc > 0 ? 1 : 0;
        }
      },
      /*chunk=*/1);
  EXPECT_EQ(total.load(), 64);
}

TEST(DefaultThreads, AtLeastOne) { EXPECT_GE(DefaultThreads(), 1); }

}  // namespace
}  // namespace livegraph
