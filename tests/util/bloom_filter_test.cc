#include "util/bloom_filter.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/random.h"

namespace livegraph {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  std::vector<uint8_t> bits(1024, 0);
  for (uint64_t key = 0; key < 200; key += 2) {
    BloomFilter::Insert(bits.data(), bits.size(), key);
  }
  for (uint64_t key = 0; key < 200; key += 2) {
    EXPECT_TRUE(BloomFilter::MayContain(bits.data(), bits.size(), key))
        << "inserted key " << key << " must be found";
  }
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  std::vector<uint8_t> bits(512, 0);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_FALSE(BloomFilter::MayContain(bits.data(), bits.size(), key));
  }
}

TEST(BloomFilter, ZeroSizeFilterAlwaysMaybe) {
  // A TEL too small for a filter must force the scan path.
  EXPECT_TRUE(BloomFilter::MayContain(nullptr, 0, 42));
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  // 1 KiB filter (the size embedded in a 16 KiB TEL) holding 512 keys —
  // matching the paper's 1/16 sizing at ~1 key per 2 bits of filter.
  std::vector<uint8_t> bits(1024, 0);
  Xorshift rng(7);
  for (int i = 0; i < 512; ++i) {
    BloomFilter::Insert(bits.data(), bits.size(), rng.Next());
  }
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (BloomFilter::MayContain(bits.data(), bits.size(),
                                rng.Next() | (uint64_t{1} << 63))) {
      false_positives++;
    }
  }
  // Blocked filters trade a little FP rate for single-cache-line probes;
  // anything under 15% is fine for the insert-vs-update discrimination.
  EXPECT_LT(false_positives, kProbes * 15 / 100)
      << "false positive rate too high: " << false_positives << "/" << kProbes;
}

class BloomSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BloomSizeTest, RoundTripAtEverySize) {
  size_t size = GetParam();
  std::vector<uint8_t> bits(size, 0);
  Xorshift rng(size);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < size / 8; ++i) keys.push_back(rng.Next());
  for (uint64_t key : keys) BloomFilter::Insert(bits.data(), size, key);
  for (uint64_t key : keys) {
    EXPECT_TRUE(BloomFilter::MayContain(bits.data(), size, key));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BloomSizeTest,
                         ::testing::Values(64, 128, 256, 1024, 4096, 65536));

}  // namespace
}  // namespace livegraph
