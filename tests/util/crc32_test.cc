#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace livegraph {
namespace {

TEST(Crc32, KnownVectors) {
  // CRC32C ("123456789") == 0xE3069283 is the canonical check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 17) {
    std::string corrupt = data;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    EXPECT_NE(Crc32c(corrupt.data(), corrupt.size()), clean)
        << "flip at byte " << byte << " undetected";
  }
}

TEST(Crc32, SeedChaining) {
  std::string a = "hello ", b = "world";
  uint32_t whole = Crc32c("hello world", 11);
  uint32_t chained = Crc32c(b.data(), b.size(), Crc32c(a.data(), a.size()));
  EXPECT_EQ(chained, whole);
}

}  // namespace
}  // namespace livegraph
