#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace livegraph {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);
  EXPECT_EQ(h.PercentileNanos(0.99), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 1000.0);
  // Log-bucketed: percentile within ~2% of the true value.
  EXPECT_NEAR(double(h.PercentileNanos(0.5)), 1000.0, 1000.0 * 0.02);
}

TEST(Histogram, MeanIsExact) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 500.5);
}

TEST(Histogram, PercentilesOrdered) {
  LatencyHistogram h;
  Xorshift rng(3);
  for (int i = 0; i < 100'000; ++i) h.Record(rng.NextBounded(10'000'000));
  uint64_t p50 = h.PercentileNanos(0.50);
  uint64_t p99 = h.PercentileNanos(0.99);
  uint64_t p999 = h.PercentileNanos(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // Uniform distribution: p50 ~ 5e6 within bucket error.
  EXPECT_NEAR(double(p50), 5e6, 5e6 * 0.05);
  EXPECT_NEAR(double(p99), 9.9e6, 9.9e6 * 0.05);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  Xorshift rng(11);
  for (int i = 0; i < 10'000; ++i) {
    uint64_t v = rng.NextBounded(1'000'000);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.MeanNanos(), combined.MeanNanos());
  EXPECT_EQ(a.PercentileNanos(0.99), combined.PercentileNanos(0.99));
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);
}

TEST(Histogram, HugeValuesClampedNotLost) {
  LatencyHistogram h;
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.PercentileNanos(0.5), 0u);
}

class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, RelativeErrorBounded) {
  uint64_t value = GetParam();
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(value);
  uint64_t p50 = h.PercentileNanos(0.5);
  EXPECT_GE(p50, value);  // upper-bound estimate
  EXPECT_LE(double(p50), double(value) * 1.02 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramAccuracyTest,
                         ::testing::Values(1, 100, 5'000, 123'456, 9'999'999,
                                           1'000'000'000, 77'000'000'000ull));

}  // namespace
}  // namespace livegraph
