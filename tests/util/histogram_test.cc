#include "util/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/random.h"

namespace livegraph {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);
  EXPECT_EQ(h.PercentileNanos(0.99), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 1000.0);
  // Log-bucketed: percentile within ~2% of the true value.
  EXPECT_NEAR(double(h.PercentileNanos(0.5)), 1000.0, 1000.0 * 0.02);
}

TEST(Histogram, MeanIsExact) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 500.5);
}

TEST(Histogram, PercentilesOrdered) {
  LatencyHistogram h;
  Xorshift rng(3);
  for (int i = 0; i < 100'000; ++i) h.Record(rng.NextBounded(10'000'000));
  uint64_t p50 = h.PercentileNanos(0.50);
  uint64_t p99 = h.PercentileNanos(0.99);
  uint64_t p999 = h.PercentileNanos(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // Uniform distribution: p50 ~ 5e6 within bucket error.
  EXPECT_NEAR(double(p50), 5e6, 5e6 * 0.05);
  EXPECT_NEAR(double(p99), 9.9e6, 9.9e6 * 0.05);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  Xorshift rng(11);
  for (int i = 0; i < 10'000; ++i) {
    uint64_t v = rng.NextBounded(1'000'000);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.MeanNanos(), combined.MeanNanos());
  EXPECT_EQ(a.PercentileNanos(0.99), combined.PercentileNanos(0.99));
}

TEST(Histogram, CrossThreadMergeEqualsSerialRecording) {
  // Per-thread histograms merged afterwards — the pattern both the bench
  // driver and the metrics registry rely on — must equal one serial
  // recording of the same values.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<LatencyHistogram> shards(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shards, t] {
      Xorshift rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        shards[static_cast<size_t>(t)].Record(rng.NextBounded(50'000'000));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LatencyHistogram merged, serial;
  for (LatencyHistogram& shard : shards) merged.Merge(shard);
  for (int t = 0; t < kThreads; ++t) {
    Xorshift rng(static_cast<uint64_t>(t) + 1);
    for (int i = 0; i < kPerThread; ++i) {
      serial.Record(rng.NextBounded(50'000'000));
    }
  }
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_DOUBLE_EQ(merged.MeanNanos(), serial.MeanNanos());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.PercentileNanos(q), serial.PercentileNanos(q));
  }
}

TEST(Histogram, AddBucketCountMatchesRecord) {
  // Bulk bucket adds (the metrics registry's collection path) land in the
  // same buckets Record would pick.
  LatencyHistogram via_record, via_bucket;
  for (uint64_t value : {uint64_t{1}, uint64_t{900}, uint64_t{123'456},
                         uint64_t{7'000'000'000}}) {
    via_record.Record(value);
    via_bucket.AddBucketCount(LatencyHistogram::BucketFor(value), 1,
                              static_cast<double>(value));
  }
  EXPECT_EQ(via_record.count(), via_bucket.count());
  EXPECT_DOUBLE_EQ(via_record.MeanNanos(), via_bucket.MeanNanos());
  EXPECT_EQ(via_record.PercentileNanos(0.5), via_bucket.PercentileNanos(0.5));
  EXPECT_EQ(via_record.PercentileNanos(0.99),
            via_bucket.PercentileNanos(0.99));

  // Out-of-range buckets are dropped, not written out of bounds.
  via_bucket.AddBucketCount(-1, 5, 0.0);
  via_bucket.AddBucketCount(LatencyHistogram::kBuckets, 5, 0.0);
  EXPECT_EQ(via_bucket.count(), via_record.count());
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);
}

TEST(Histogram, HugeValuesClampedNotLost) {
  LatencyHistogram h;
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.PercentileNanos(0.5), 0u);
}

class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, RelativeErrorBounded) {
  uint64_t value = GetParam();
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(value);
  uint64_t p50 = h.PercentileNanos(0.5);
  EXPECT_GE(p50, value);  // upper-bound estimate
  EXPECT_LE(double(p50), double(value) * 1.02 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramAccuracyTest,
                         ::testing::Values(1, 100, 5'000, 123'456, 9'999'999,
                                           1'000'000'000, 77'000'000'000ull));

}  // namespace
}  // namespace livegraph
