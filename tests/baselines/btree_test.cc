#include "baselines/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/random.h"

namespace livegraph {
namespace {

TEST(BPlusTree, InsertFindErase) {
  BPlusTree tree;
  EdgeKey k{1, 0, 2};
  EXPECT_EQ(tree.Find(k), nullptr);
  EXPECT_TRUE(tree.Insert(k, "v1"));
  ASSERT_NE(tree.Find(k), nullptr);
  EXPECT_EQ(*tree.Find(k), "v1");
  EXPECT_FALSE(tree.Insert(k, "v2"));  // upsert updates in place
  EXPECT_EQ(*tree.Find(k), "v2");
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Erase(k));
  EXPECT_EQ(tree.Find(k), nullptr);
  EXPECT_FALSE(tree.Erase(k));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BPlusTree, KeyOrderingIsSrcLabelDst) {
  EXPECT_LT((EdgeKey{1, 0, 9}), (EdgeKey{2, 0, 0}));
  EXPECT_LT((EdgeKey{1, 0, 9}), (EdgeKey{1, 1, 0}));
  EXPECT_LT((EdgeKey{1, 1, 3}), (EdgeKey{1, 1, 4}));
  EXPECT_EQ((EdgeKey{1, 1, 3}), (EdgeKey{1, 1, 3}));
}

TEST(BPlusTree, RangeScanWithinSource) {
  BPlusTree tree;
  for (vertex_t src = 0; src < 10; ++src) {
    for (vertex_t dst = 0; dst < 20; ++dst) {
      tree.Insert(EdgeKey{src, 0, dst}, "x");
    }
  }
  // Scan src=5: exactly its 20 edges, in dst order.
  std::vector<vertex_t> dsts;
  for (auto it = tree.LowerBound(EdgeKey{5, 0, INT64_MIN}); it.Valid();
       it.Next()) {
    if (it.key().src != 5) break;
    dsts.push_back(it.key().dst);
  }
  ASSERT_EQ(dsts.size(), 20u);
  EXPECT_TRUE(std::is_sorted(dsts.begin(), dsts.end()));
}

TEST(BPlusTree, LogarithmicHeightGrowth) {
  BPlusTree tree;
  Xorshift rng(5);
  for (int i = 0; i < 100'000; ++i) {
    tree.Insert(EdgeKey{static_cast<vertex_t>(rng.Next() % 1'000'000), 0,
                        static_cast<vertex_t>(rng.Next())},
                "v");
  }
  // Fanout 64: 100K keys fit within height 4 (64^3 = 262144 > 100K/32).
  EXPECT_LE(tree.height(), 4);
  EXPECT_GE(tree.height(), 3);
}

TEST(BPlusTree, MatchesReferenceMapUnderRandomOps) {
  BPlusTree tree;
  std::map<EdgeKey, std::string> reference;
  Xorshift rng(17);
  for (int i = 0; i < 50'000; ++i) {
    EdgeKey key{static_cast<vertex_t>(rng.NextBounded(64)),
                static_cast<label_t>(rng.NextBounded(2)),
                static_cast<vertex_t>(rng.NextBounded(64))};
    if (rng.NextBounded(4) == 0) {
      EXPECT_EQ(tree.Erase(key), reference.erase(key) > 0) << "op " << i;
    } else {
      std::string value = "v" + std::to_string(i);
      EXPECT_EQ(tree.Insert(key, value), reference.count(key) == 0);
      reference[key] = value;
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(tree.Find(key), nullptr);
    EXPECT_EQ(*tree.Find(key), value);
  }
  // Full ordered iteration matches reference order.
  auto ref_it = reference.begin();
  for (auto it = tree.LowerBound(EdgeKey{INT64_MIN, 0, INT64_MIN}); it.Valid();
       it.Next(), ++ref_it) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it.key(), ref_it->first);
  }
  EXPECT_EQ(ref_it, reference.end());
}

TEST(BPlusTree, PageSimChargesSeeks) {
  PageCacheSim sim(PageCacheSim::Optane(2));  // tiny cache: everything misses
  BPlusTree tree(&sim);
  for (int i = 0; i < 10'000; ++i) {
    tree.Insert(EdgeKey{i % 500, 0, i}, "v");
  }
  sim.ResetStats();
  tree.Find(EdgeKey{250, 0, 250 + 4500});
  auto stats = sim.GetStats();
  EXPECT_GT(stats.misses + stats.hits, 1u)
      << "a B+ tree seek must touch multiple nodes";
}

}  // namespace
}  // namespace livegraph
