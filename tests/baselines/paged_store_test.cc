#include "baselines/paged_store.h"

#include <gtest/gtest.h>

#include <vector>

namespace livegraph {
namespace {

TEST(PageCacheSim, HitsAfterFirstTouch) {
  PageCacheSim sim(PageCacheSim::Optane(128));
  std::vector<uint8_t> data(4096 * 4);
  sim.Touch(data.data(), data.size(), false);
  auto first = sim.GetStats();
  EXPECT_GT(first.misses, 0u);
  sim.Touch(data.data(), data.size(), false);
  auto second = sim.GetStats();
  EXPECT_EQ(second.misses, first.misses) << "second touch must hit";
  EXPECT_GT(second.hits, first.hits);
}

TEST(PageCacheSim, EvictsWhenOverCapacity) {
  PageCacheSim::Options options = PageCacheSim::Optane(64);
  options.shards = 1;
  options.capacity_pages = 8;
  options.read_latency_ns = 100;  // keep the test fast
  PageCacheSim sim(options);
  std::vector<uint8_t> data(4096 * 64);
  sim.Touch(data.data(), data.size(), false);   // ~64 pages through 8 slots
  auto warm = sim.GetStats();
  sim.Touch(data.data(), 4096, false);          // first page evicted by now
  auto stats = sim.GetStats();
  EXPECT_GE(warm.misses, 64u);  // buffer may straddle one extra page
  EXPECT_GT(stats.misses, warm.misses) << "evicted page must re-miss";
}

TEST(PageCacheSim, DirtyEvictionChargesWrite) {
  PageCacheSim::Options options;
  options.shards = 1;
  options.capacity_pages = 4;
  options.read_latency_ns = 100;
  options.write_latency_ns = 100;
  PageCacheSim sim(options);
  std::vector<uint8_t> data(4096 * 16);
  sim.Touch(data.data(), data.size(), true);  // dirty all, evicting dirty
  auto stats = sim.GetStats();
  EXPECT_GT(stats.dirty_evictions, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST(PageCacheSim, MissStallsForDeviceLatency) {
  PageCacheSim::Options options;
  options.capacity_pages = 1024;
  options.read_latency_ns = 200'000;  // 200 us, measurable
  PageCacheSim sim(options);
  uint8_t byte;
  auto start = std::chrono::steady_clock::now();
  sim.Touch(&byte, 1, false);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            180);
}

TEST(PageCacheSim, SequentialWriteDiscounted) {
  PageCacheSim::Options options;
  options.write_latency_ns = 8000;
  options.sequential_factor = 8;
  PageCacheSim sim(options);
  sim.SequentialWrite(4096 * 10);
  auto stats = sim.GetStats();
  EXPECT_EQ(stats.simulated_io_ns, 10u * 1000u);
  EXPECT_EQ(stats.bytes_written, 4096u * 10);
}

}  // namespace
}  // namespace livegraph
