// Cross-engine conformance: every GraphStore implementation must satisfy
// the same contract, verified behind one parameterized suite.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "baselines/btree_store.h"
#include "baselines/linked_list_store.h"
#include "baselines/livegraph_store.h"
#include "baselines/lsmt_store.h"

namespace livegraph {
namespace {

GraphOptions SmallGraphOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 30;
  options.max_vertices = 1 << 18;
  return options;
}

using StoreFactory = std::function<std::unique_ptr<GraphStore>()>;

class StoreConformanceTest
    : public ::testing::TestWithParam<std::pair<const char*, StoreFactory>> {
 protected:
  void SetUp() override { store_ = GetParam().second(); }
  std::unique_ptr<GraphStore> store_;
};

TEST_P(StoreConformanceTest, NodeLifecycle) {
  vertex_t id = store_->AddNode("alpha");
  ASSERT_GE(id, 0);
  std::string out;
  ASSERT_TRUE(store_->GetNode(id, &out));
  EXPECT_EQ(out, "alpha");
  EXPECT_TRUE(store_->UpdateNode(id, "beta"));
  ASSERT_TRUE(store_->GetNode(id, &out));
  EXPECT_EQ(out, "beta");
  EXPECT_TRUE(store_->DeleteNode(id));
  EXPECT_FALSE(store_->GetNode(id, &out));
  EXPECT_FALSE(store_->UpdateNode(id, "gamma"));
}

TEST_P(StoreConformanceTest, LinkUpsertSemantics) {
  vertex_t a = store_->AddNode("a");
  vertex_t b = store_->AddNode("b");
  EXPECT_TRUE(store_->AddLink(a, 0, b, "v1")) << "first add is an insert";
  EXPECT_FALSE(store_->AddLink(a, 0, b, "v2")) << "second add is an update";
  std::string out;
  ASSERT_TRUE(store_->GetLink(a, 0, b, &out));
  EXPECT_EQ(out, "v2");
  EXPECT_TRUE(store_->UpdateLink(a, 0, b, "v3"));
  ASSERT_TRUE(store_->GetLink(a, 0, b, &out));
  EXPECT_EQ(out, "v3");
  EXPECT_FALSE(store_->UpdateLink(a, 0, a, "nope"))
      << "update of missing link must fail";
  EXPECT_TRUE(store_->DeleteLink(a, 0, b));
  EXPECT_FALSE(store_->GetLink(a, 0, b, &out));
  EXPECT_FALSE(store_->DeleteLink(a, 0, b));
}

TEST_P(StoreConformanceTest, ScanAndCount) {
  vertex_t hub = store_->AddNode("hub");
  std::set<vertex_t> dsts;
  for (int i = 0; i < 50; ++i) {
    vertex_t d = store_->AddNode("leaf");
    store_->AddLink(hub, 0, d, "e");
    dsts.insert(d);
  }
  EXPECT_EQ(store_->CountLinks(hub, 0), 50u);
  std::set<vertex_t> seen;
  size_t visited = store_->ScanLinks(hub, 0, [&](vertex_t dst, std::string_view) {
    EXPECT_TRUE(seen.insert(dst).second);
    return true;
  });
  EXPECT_EQ(visited, 50u);
  EXPECT_EQ(seen, dsts);
  // Early termination.
  size_t limit = 10;
  store_->ScanLinks(hub, 0, [&](vertex_t, std::string_view) {
    return --limit > 0;
  });
  EXPECT_EQ(limit, 0u);
}

TEST_P(StoreConformanceTest, LabelsAreDisjoint) {
  vertex_t a = store_->AddNode("a");
  vertex_t b = store_->AddNode("b");
  store_->AddLink(a, 1, b, "L1");
  store_->AddLink(a, 2, b, "L2");
  EXPECT_EQ(store_->CountLinks(a, 1), 1u);
  EXPECT_EQ(store_->CountLinks(a, 2), 1u);
  EXPECT_EQ(store_->CountLinks(a, 3), 0u);
  std::string out;
  ASSERT_TRUE(store_->GetLink(a, 1, b, &out));
  EXPECT_EQ(out, "L1");
  EXPECT_TRUE(store_->DeleteLink(a, 1, b));
  EXPECT_EQ(store_->CountLinks(a, 1), 0u);
  EXPECT_EQ(store_->CountLinks(a, 2), 1u);
}

TEST_P(StoreConformanceTest, ReadViewIsConsistentInterface) {
  vertex_t a = store_->AddNode("node-a");
  vertex_t b = store_->AddNode("node-b");
  store_->AddLink(a, 0, b, "edge");
  auto view = store_->OpenReadView();
  std::string out;
  ASSERT_TRUE(view->GetNode(a, &out));
  EXPECT_EQ(out, "node-a");
  ASSERT_TRUE(view->GetLink(a, 0, b, &out));
  EXPECT_EQ(out, "edge");
  EXPECT_EQ(view->CountLinks(a, 0), 1u);
  size_t visited = view->ScanLinks(a, 0, [&](vertex_t dst, std::string_view) {
    EXPECT_EQ(dst, b);
    return true;
  });
  EXPECT_EQ(visited, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, StoreConformanceTest,
    ::testing::Values(
        std::make_pair("LiveGraph",
                       StoreFactory([] {
                         return std::unique_ptr<GraphStore>(
                             new LiveGraphStore(SmallGraphOptions()));
                       })),
        std::make_pair("BTree",
                       StoreFactory([] {
                         return std::unique_ptr<GraphStore>(new BTreeStore());
                       })),
        std::make_pair("Lsmt",
                       StoreFactory([] {
                         return std::unique_ptr<GraphStore>(new LsmtStore());
                       })),
        std::make_pair("LinkedList",
                       StoreFactory([] {
                         return std::unique_ptr<GraphStore>(
                             new LinkedListStore());
                       }))),
    [](const auto& info) { return info.param.first; });

TEST(LiveGraphStoreSnapshot, ReadViewIsStableSnapshot) {
  // Only LiveGraph's view is a true MVCC snapshot; pin that stronger
  // guarantee separately.
  LiveGraphStore store(SmallGraphOptions());
  vertex_t a = store.AddNode("a");
  vertex_t b = store.AddNode("b");
  store.AddLink(a, 0, b, "old");
  auto view = store.OpenReadView();
  store.AddLink(a, 0, a, "new-edge");
  store.UpdateNode(a, "a2");
  std::string out;
  ASSERT_TRUE(view->GetNode(a, &out));
  EXPECT_EQ(out, "a");
  EXPECT_EQ(view->CountLinks(a, 0), 1u);
  auto fresh = store.OpenReadView();
  ASSERT_TRUE(fresh->GetNode(a, &out));
  EXPECT_EQ(out, "a2");
  EXPECT_EQ(fresh->CountLinks(a, 0), 2u);
}

}  // namespace
}  // namespace livegraph
