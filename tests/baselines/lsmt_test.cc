#include "baselines/lsmt.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/random.h"

namespace livegraph {
namespace {

Lsmt::Options SmallMemtable() {
  Lsmt::Options options;
  options.memtable_bytes = 16 << 10;  // force frequent flushes
  options.max_runs = 4;
  return options;
}

TEST(Lsmt, PutGetDelete) {
  Lsmt lsmt;
  EdgeKey k{1, 0, 2};
  std::string out;
  EXPECT_FALSE(lsmt.Get(k, &out));
  EXPECT_TRUE(lsmt.Put(k, "v1"));
  ASSERT_TRUE(lsmt.Get(k, &out));
  EXPECT_EQ(out, "v1");
  EXPECT_FALSE(lsmt.Put(k, "v2"));  // overwrite
  ASSERT_TRUE(lsmt.Get(k, &out));
  EXPECT_EQ(out, "v2");
  EXPECT_TRUE(lsmt.Delete(k));
  EXPECT_FALSE(lsmt.Get(k, &out));
  EXPECT_FALSE(lsmt.Delete(k));
}

TEST(Lsmt, FlushCreatesRunsAndPreservesData) {
  Lsmt lsmt(SmallMemtable());
  for (int i = 0; i < 2000; ++i) {
    lsmt.Put(EdgeKey{i % 50, 0, i}, "value-" + std::to_string(i));
  }
  EXPECT_GT(lsmt.run_count(), 0u) << "small memtable must have flushed";
  std::string out;
  ASSERT_TRUE(lsmt.Get(EdgeKey{0, 0, 0}, &out));
  EXPECT_EQ(out, "value-0");
  ASSERT_TRUE(lsmt.Get(EdgeKey{1999 % 50, 0, 1999}, &out));
  EXPECT_EQ(out, "value-1999");
}

TEST(Lsmt, CompactionBoundsRunCount) {
  Lsmt::Options options = SmallMemtable();
  Lsmt lsmt(options);
  for (int i = 0; i < 20'000; ++i) {
    lsmt.Put(EdgeKey{i, 0, i}, "xxxxxxxxxxxxxxxx");
  }
  EXPECT_LE(lsmt.run_count(), options.max_runs + 1);
  std::string out;
  ASSERT_TRUE(lsmt.Get(EdgeKey{12345, 0, 12345}, &out));
}

TEST(Lsmt, TombstonesSuppressAcrossRuns) {
  Lsmt lsmt(SmallMemtable());
  // Insert, force flush, delete, force more flushes + compaction.
  lsmt.Put(EdgeKey{7, 0, 7}, "victim");
  for (int i = 0; i < 1000; ++i) lsmt.Put(EdgeKey{100 + i, 0, i}, "padpadpad");
  ASSERT_TRUE(lsmt.Delete(EdgeKey{7, 0, 7}));
  for (int i = 0; i < 5000; ++i) lsmt.Put(EdgeKey{5000 + i, 0, i}, "padpadpad");
  std::string out;
  EXPECT_FALSE(lsmt.Get(EdgeKey{7, 0, 7}, &out))
      << "tombstone lost across flush/compaction";
}

TEST(Lsmt, ScanMergesNewestVersions) {
  Lsmt lsmt(SmallMemtable());
  for (int round = 0; round < 3; ++round) {
    for (vertex_t dst = 0; dst < 100; ++dst) {
      lsmt.Put(EdgeKey{1, 0, dst}, "round-" + std::to_string(round));
    }
    // Pad to force flushes between rounds.
    for (int i = 0; i < 500; ++i) {
      lsmt.Put(EdgeKey{99, 0, 1000 + round * 500 + i}, "pad");
    }
  }
  std::set<vertex_t> seen;
  lsmt.Scan(EdgeKey{1, 0, INT64_MIN}, EdgeKey{1, 1, INT64_MIN},
            [&](const EdgeKey& key, std::string_view value) {
              EXPECT_TRUE(seen.insert(key.dst).second)
                  << "duplicate dst " << key.dst;
              EXPECT_EQ(value, "round-2") << "stale version surfaced";
              return true;
            });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Lsmt, ScanHonorsDeletes) {
  Lsmt lsmt(SmallMemtable());
  for (vertex_t dst = 0; dst < 50; ++dst) lsmt.Put(EdgeKey{3, 0, dst}, "v");
  for (vertex_t dst = 0; dst < 50; dst += 2) lsmt.Delete(EdgeKey{3, 0, dst});
  size_t count = 0;
  lsmt.Scan(EdgeKey{3, 0, INT64_MIN}, EdgeKey{3, 1, INT64_MIN},
            [&](const EdgeKey& key, std::string_view) {
              EXPECT_EQ(key.dst % 2, 1) << "deleted key surfaced";
              count++;
              return true;
            });
  EXPECT_EQ(count, 25u);
}

TEST(Lsmt, MatchesReferenceUnderRandomOps) {
  Lsmt lsmt(SmallMemtable());
  std::map<EdgeKey, std::string> reference;
  Xorshift rng(23);
  for (int i = 0; i < 30'000; ++i) {
    EdgeKey key{static_cast<vertex_t>(rng.NextBounded(32)), 0,
                static_cast<vertex_t>(rng.NextBounded(256))};
    if (rng.NextBounded(4) == 0) {
      EXPECT_EQ(lsmt.Delete(key), reference.erase(key) > 0) << "op " << i;
    } else {
      std::string value = "v" + std::to_string(i);
      EXPECT_EQ(lsmt.Put(key, value), reference.count(key) == 0) << "op " << i;
      reference[key] = value;
    }
  }
  for (const auto& [key, value] : reference) {
    std::string out;
    ASSERT_TRUE(lsmt.Get(key, &out));
    EXPECT_EQ(out, value);
  }
  // Scan per source must match the reference exactly.
  for (vertex_t src = 0; src < 32; ++src) {
    std::vector<vertex_t> got;
    lsmt.Scan(EdgeKey{src, 0, INT64_MIN}, EdgeKey{src, 1, INT64_MIN},
              [&](const EdgeKey& key, std::string_view) {
                got.push_back(key.dst);
                return true;
              });
    std::vector<vertex_t> expected;
    for (const auto& [key, unused] : reference) {
      if (key.src == src) expected.push_back(key.dst);
    }
    EXPECT_EQ(got, expected) << "src " << src;
  }
}

}  // namespace
}  // namespace livegraph
