#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace livegraph {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() / "lg_wal_test.log")
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    Wal wal({path_, /*fsync=*/false});
    wal.AppendBatch(1, {"alpha", "beta"});
    wal.AppendBatch(2, {"gamma"});
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  ASSERT_TRUE(reader.Next(&epoch, &payload));
  EXPECT_EQ(epoch, 1);
  EXPECT_EQ(payload, "alpha");
  ASSERT_TRUE(reader.Next(&epoch, &payload));
  EXPECT_EQ(epoch, 1);
  EXPECT_EQ(payload, "beta");
  ASSERT_TRUE(reader.Next(&epoch, &payload));
  EXPECT_EQ(epoch, 2);
  EXPECT_EQ(payload, "gamma");
  EXPECT_FALSE(reader.Next(&epoch, &payload));
}

TEST_F(WalTest, PerRecordEpochsAndParticipantsRoundTrip) {
  // One physical batch can mix epochs: fresh group-commit records share
  // the batch's epoch while coordinator-stamped multi-shard pieces keep
  // their own, with the piece count in `participants` (sharded recovery's
  // torn-transaction filter keys on it).
  {
    Wal wal({path_, /*fsync=*/false});
    wal.AppendBatch({Wal::Record{7, 1, "fresh-a"},
                     Wal::Record{5, 3, "piece"},
                     Wal::Record{7, 1, "fresh-b"}});
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  uint32_t participants;
  std::string payload;
  ASSERT_TRUE(reader.Next(&epoch, &participants, &payload));
  EXPECT_EQ(epoch, 7);
  EXPECT_EQ(participants, 1u);
  EXPECT_EQ(payload, "fresh-a");
  ASSERT_TRUE(reader.Next(&epoch, &participants, &payload));
  EXPECT_EQ(epoch, 5);
  EXPECT_EQ(participants, 3u);
  EXPECT_EQ(payload, "piece");
  ASSERT_TRUE(reader.Next(&epoch, &participants, &payload));
  EXPECT_EQ(epoch, 7);
  EXPECT_EQ(participants, 1u);
  EXPECT_EQ(payload, "fresh-b");
  EXPECT_FALSE(reader.Next(&epoch, &participants, &payload));
}

TEST_F(WalTest, CorruptParticipantsFailsCrc) {
  {
    Wal wal({path_, false});
    wal.AppendBatch({Wal::Record{3, 2, "guarded"}});
  }
  // Flip a byte inside the participants field (offset 16 in the header):
  // the CRC covers it, so replay must reject the record.
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16, std::ios::beg);
    f.put('\x7');
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  EXPECT_FALSE(reader.Next(&epoch, &payload));
}

TEST_F(WalTest, EmptyBatchWritesNothing) {
  {
    Wal wal({path_, false});
    wal.AppendBatch(1, {});
    EXPECT_EQ(wal.bytes_written(), 0u);
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  EXPECT_FALSE(reader.Next(&epoch, &payload));
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  Wal::Reader reader("/nonexistent/path/to.wal");
  timestamp_t epoch;
  std::string payload;
  EXPECT_FALSE(reader.Next(&epoch, &payload));
}

TEST_F(WalTest, TornTailStopsReplay) {
  {
    Wal wal({path_, false});
    wal.AppendBatch(1, {"complete-record"});
  }
  // Simulate a crash mid-append: write a header that promises more bytes
  // than exist.
  {
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    uint32_t len = 1000, crc = 0;
    timestamp_t epoch = 2;
    f.write(reinterpret_cast<char*>(&len), 4);
    f.write(reinterpret_cast<char*>(&crc), 4);
    f.write(reinterpret_cast<char*>(&epoch), 8);
    f.write("short", 5);
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  ASSERT_TRUE(reader.Next(&epoch, &payload));
  EXPECT_EQ(payload, "complete-record");
  EXPECT_FALSE(reader.Next(&epoch, &payload)) << "torn record must not replay";
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  {
    Wal wal({path_, false});
    wal.AppendBatch(1, {"record-one"});
    wal.AppendBatch(2, {"record-two"});
  }
  // Flip a byte inside the second record's payload.
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  ASSERT_TRUE(reader.Next(&epoch, &payload));
  EXPECT_EQ(payload, "record-one");
  EXPECT_FALSE(reader.Next(&epoch, &payload));
}

TEST_F(WalTest, ResetTruncates) {
  Wal wal({path_, false});
  wal.AppendBatch(1, {"data"});
  EXPECT_GT(wal.bytes_written(), 0u);
  wal.Reset();
  EXPECT_EQ(wal.bytes_written(), 0u);
  EXPECT_EQ(std::filesystem::file_size(path_), 0u);
}

TEST_F(WalTest, BinaryPayloadsWithEmbeddedNulls) {
  std::string binary("\x00\x01\x02\xFF\x00payload", 13);
  {
    Wal wal({path_, false});
    wal.AppendBatch(7, {binary});
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  ASSERT_TRUE(reader.Next(&epoch, &payload));
  EXPECT_EQ(epoch, 7);
  EXPECT_EQ(payload, binary);
}

TEST_F(WalTest, LargeBatch) {
  std::vector<std::string> payloads;
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; ++i) {
    payloads.push_back("payload-" + std::to_string(i) +
                       std::string(static_cast<size_t>(i % 97), 'z'));
  }
  for (const auto& p : payloads) views.push_back(p);
  {
    Wal wal({path_, false});
    wal.AppendBatch(3, views);
  }
  Wal::Reader reader(path_);
  timestamp_t epoch;
  std::string payload;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reader.Next(&epoch, &payload)) << "record " << i;
    EXPECT_EQ(payload, payloads[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(reader.Next(&epoch, &payload));
}

}  // namespace
}  // namespace livegraph
