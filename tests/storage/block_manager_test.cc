#include "storage/block_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

namespace livegraph {
namespace {

BlockManager::Options SmallOptions() {
  BlockManager::Options options;
  options.reserve_bytes = size_t{1} << 28;
  return options;
}

TEST(BlockPtr, PackUnpackRoundTrip) {
  block_ptr_t p = PackBlockPtr(0x123456789AULL, 12);
  EXPECT_EQ(BlockOffset(p), 0x123456789AULL);
  EXPECT_EQ(BlockOrder(p), 12);
  EXPECT_NE(p, kNullBlock);
}

TEST(BlockManager, OrderForRoundsUp) {
  EXPECT_EQ(BlockManager::OrderFor(1), 6);     // minimum 64 B
  EXPECT_EQ(BlockManager::OrderFor(64), 6);
  EXPECT_EQ(BlockManager::OrderFor(65), 7);
  EXPECT_EQ(BlockManager::OrderFor(128), 7);
  EXPECT_EQ(BlockManager::OrderFor(1 << 20), 20);
  EXPECT_EQ(BlockManager::OrderFor((1 << 20) + 1), 21);
}

TEST(BlockManager, AllocationIsAligned) {
  BlockManager manager(SmallOptions());
  for (uint8_t order = 6; order <= 16; ++order) {
    block_ptr_t p = manager.Allocate(order);
    EXPECT_EQ(BlockOrder(p), order);
    EXPECT_EQ(BlockOffset(p) % (uint64_t{1} << order), 0u)
        << "block of order " << int(order) << " must be naturally aligned";
  }
}

TEST(BlockManager, FreeListRecycles) {
  BlockManager manager(SmallOptions());
  block_ptr_t a = manager.Allocate(8);
  manager.Free(a);
  block_ptr_t b = manager.Allocate(8);
  EXPECT_EQ(BlockOffset(a), BlockOffset(b)) << "freed block must be reused";
}

TEST(BlockManager, DistinctLiveBlocksDoNotOverlap) {
  BlockManager manager(SmallOptions());
  std::vector<block_ptr_t> blocks;
  for (int i = 0; i < 200; ++i) {
    blocks.push_back(manager.Allocate(static_cast<uint8_t>(6 + i % 6)));
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (block_ptr_t p : blocks) {
    ranges.emplace_back(BlockOffset(p),
                        BlockOffset(p) + (uint64_t{1} << BlockOrder(p)));
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first) << "overlap at " << i;
  }
}

TEST(BlockManager, RetireDelaysReclamation) {
  BlockManager manager(SmallOptions());
  block_ptr_t a = manager.Allocate(7);
  manager.Retire(a, /*retire_epoch=*/10);
  EXPECT_EQ(manager.ReclaimRetired(/*safe_epoch=*/5), 0u);
  block_ptr_t b = manager.Allocate(7);
  EXPECT_NE(BlockOffset(a), BlockOffset(b)) << "retired block reused early";
  EXPECT_EQ(manager.ReclaimRetired(/*safe_epoch=*/10), 1u);
  block_ptr_t c = manager.Allocate(7);
  EXPECT_EQ(BlockOffset(a), BlockOffset(c)) << "reclaimed block not reused";
}

TEST(BlockManager, StatsAccounting) {
  BlockManager manager(SmallOptions());
  auto s0 = manager.GetStats();
  EXPECT_EQ(s0.live_bytes(), 0u);
  block_ptr_t a = manager.Allocate(10);  // 1 KiB
  auto s1 = manager.GetStats();
  EXPECT_EQ(s1.live_bytes(), 1024u);
  manager.Retire(a, 1);
  auto s2 = manager.GetStats();
  EXPECT_EQ(s2.retired_bytes, 1024u);
  EXPECT_EQ(s2.live_bytes(), 0u);
  manager.ReclaimRetired(1);
  auto s3 = manager.GetStats();
  EXPECT_EQ(s3.free_list_bytes, 1024u);
  EXPECT_EQ(s3.retired_bytes, 0u);
}

TEST(BlockManager, FileBackedSurvivesReopen) {
  auto path = std::filesystem::temp_directory_path() / "lg_blocks.bin";
  std::filesystem::remove(path);
  uint64_t offset;
  {
    BlockManager::Options options;
    options.path = path.string();
    options.reserve_bytes = size_t{1} << 26;
    BlockManager manager(options);
    block_ptr_t p = manager.Allocate(12);
    offset = BlockOffset(p);
    std::memcpy(manager.Pointer(p), "persistent-data", 15);
    manager.Sync();
  }
  {
    BlockManager::Options options;
    options.path = path.string();
    options.reserve_bytes = size_t{1} << 26;
    BlockManager manager(options);
    EXPECT_EQ(std::memcmp(manager.Pointer(PackBlockPtr(offset, 12)),
                          "persistent-data", 15),
              0);
  }
  std::filesystem::remove(path);
}

TEST(BlockManager, ConcurrentAllocationUnique) {
  BlockManager manager(SmallOptions());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<block_ptr_t>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<size_t>(t)].push_back(
            manager.Allocate(static_cast<uint8_t>(6 + i % 4)));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<uint64_t> offsets;
  for (const auto& per_thread : results) {
    for (block_ptr_t p : per_thread) {
      EXPECT_TRUE(offsets.insert(BlockOffset(p)).second)
          << "duplicate allocation";
    }
  }
}

class OrderSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderSweepTest, AllocateWriteFreeAtEveryOrder) {
  BlockManager manager(SmallOptions());
  auto order = static_cast<uint8_t>(GetParam());
  block_ptr_t p = manager.Allocate(order);
  size_t size = size_t{1} << order;
  std::memset(manager.Pointer(p), 0x5A, size);
  EXPECT_EQ(manager.Pointer(p)[size - 1], 0x5A);
  manager.Free(p);
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderSweepTest, ::testing::Range(6, 24));

}  // namespace
}  // namespace livegraph
