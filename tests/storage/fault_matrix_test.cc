// Deterministic fault matrix over the storage failpoints (docs/FAULTS.md):
// every injected durability failure must surface as a typed Status, leave
// the store serving consistent reads at the last durable epoch, reject
// writes without aborting, and — after the fault clears and the process
// restarts — recover every acknowledged commit. Compiled against the
// failpoint registry; in a normal build the whole matrix skips.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "shard/sharded_store.h"
#include "util/fault_injection.h"

namespace livegraph {
namespace {

#if defined(LIVEGRAPH_FAULTS_ENABLED)

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::Clear();
    dir_ = std::filesystem::temp_directory_path() /
           ("lg_faults_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faults::Clear();
    std::filesystem::remove_all(dir_);
  }

  GraphOptions DurableOptions(bool fsync = false) {
    GraphOptions options;
    options.region_reserve = size_t{1} << 30;
    options.max_vertices = 1 << 16;
    options.enable_compaction = false;
    options.wal_path = (dir_ / "wal.log").string();
    options.fsync_wal = fsync;
    return options;
  }

  std::string CheckpointDir() { return (dir_ / "ckpt").string(); }

  /// Commits `n` single-vertex transactions; returns their ids.
  static std::vector<vertex_t> CommitSome(Graph& graph, int n,
                                          const char* prefix) {
    std::vector<vertex_t> ids;
    for (int i = 0; i < n; ++i) {
      auto txn = graph.BeginTransaction();
      ids.push_back(txn.AddVertex(prefix + std::to_string(i)));
      EXPECT_EQ(txn.Commit(), Status::kOk);
    }
    return ids;
  }

  static void ExpectPresent(Graph& graph, const std::vector<vertex_t>& ids,
                            const char* prefix) {
    auto read = graph.BeginReadOnlyTransaction();
    for (size_t i = 0; i < ids.size(); ++i) {
      auto props = read.GetVertex(ids[i]);
      ASSERT_TRUE(props.has_value()) << prefix << i;
      EXPECT_EQ(*props, prefix + std::to_string(i));
    }
  }

  std::filesystem::path dir_;
};

// The acceptance criterion, verbatim: ENOSPC on WAL append mid-workload
// leaves the store serving consistent reads at the last durable epoch and
// rejecting writes with a typed Status (no abort); clearing the fault and
// restarting recovers with zero committed-transaction loss.
TEST_F(FaultMatrixTest, EnospcOnAppendDegradesAndRecoversLossFree) {
  auto graph = std::make_unique<Graph>(DurableOptions());
  std::vector<vertex_t> committed = CommitSome(*graph, 5, "ok");

  ASSERT_TRUE(faults::Configure("wal.append=error:ENOSPC"));
  vertex_t doomed;
  {
    auto txn = graph->BeginTransaction();
    doomed = txn.AddVertex("doomed");
    EXPECT_EQ(txn.Commit(), Status::kResourceExhausted);
  }
  EXPECT_EQ(graph->degraded_status(), Status::kResourceExhausted);

  // Writes fast-reject with the same typed status, before touching the WAL.
  {
    auto txn = graph->BeginTransaction();
    txn.AddVertex("rejected");
    EXPECT_EQ(txn.Commit(), Status::kResourceExhausted);
  }
  // Reads keep serving the last durable epoch: every acknowledged commit,
  // nothing from the failed one.
  ExpectPresent(*graph, committed, "ok");
  {
    auto read = graph->BeginReadOnlyTransaction();
    EXPECT_FALSE(read.GetVertex(doomed).has_value());
  }

  // Clearing the fault does NOT un-degrade a live engine: degraded mode is
  // sticky until restart (the log is poisoned).
  faults::Clear();
  {
    auto txn = graph->BeginTransaction();
    txn.AddVertex("still-rejected");
    EXPECT_EQ(txn.Commit(), Status::kResourceExhausted);
  }

  // Restart: zero committed-transaction loss, failed commit absent, and
  // the store writes again.
  graph.reset();
  auto recovered = Graph::Recover(DurableOptions(), "");
  ExpectPresent(*recovered, committed, "ok");
  {
    auto read = recovered->BeginReadOnlyTransaction();
    EXPECT_FALSE(read.GetVertex(doomed).has_value());
  }
  EXPECT_EQ(recovered->degraded_status(), Status::kOk);
  std::vector<vertex_t> fresh = CommitSome(*recovered, 3, "fresh");
  ExpectPresent(*recovered, fresh, "fresh");
}

// A torn (short) append writes real partial bytes, then fails the commit;
// recovery truncates the torn tail and keeps every acknowledged commit.
TEST_F(FaultMatrixTest, TornAppendTruncatedOnRecovery) {
  auto graph = std::make_unique<Graph>(DurableOptions());
  std::vector<vertex_t> committed = CommitSome(*graph, 5, "ok");

  ASSERT_TRUE(faults::Configure("wal.append=short:7"));
  {
    auto txn = graph->BeginTransaction();
    txn.AddVertex("torn");
    EXPECT_EQ(txn.Commit(), Status::kIOError);
  }
  EXPECT_EQ(graph->degraded_status(), Status::kIOError);
  faults::Clear();

  graph.reset();
  auto recovered = Graph::Recover(DurableOptions(), "");
  ExpectPresent(*recovered, committed, "ok");
  {
    auto read = recovered->BeginReadOnlyTransaction();
    EXPECT_FALSE(read.GetVertex(committed.back() + 1).has_value())
        << "the torn record must not replay";
  }
  std::vector<vertex_t> fresh = CommitSome(*recovered, 3, "fresh");
  ExpectPresent(*recovered, fresh, "fresh");
}

// fsyncgate: a failed fdatasync poisons the log permanently — the engine
// must never retry the sync against a page cache that may have dropped
// the dirty pages. Acknowledged commits survive restart.
TEST_F(FaultMatrixTest, FdatasyncFailurePoisonsStickily) {
  auto graph = std::make_unique<Graph>(DurableOptions(/*fsync=*/true));
  std::vector<vertex_t> committed = CommitSome(*graph, 4, "ok");

  ASSERT_TRUE(faults::Configure("wal.fdatasync=error:EIO@once"));
  {
    auto txn = graph->BeginTransaction();
    txn.AddVertex("unacked");
    EXPECT_EQ(txn.Commit(), Status::kIOError);
  }
  EXPECT_EQ(graph->degraded_status(), Status::kIOError);
  faults::Clear();

  // Sticky: the @once trigger is spent and the fault cleared, yet the
  // engine must NOT sync again and must keep rejecting writes.
  const uint64_t syncs_after_poison = faults::HitCount("wal.fdatasync");
  for (int i = 0; i < 3; ++i) {
    auto txn = graph->BeginTransaction();
    txn.AddVertex("rejected");
    EXPECT_EQ(txn.Commit(), Status::kIOError);
  }
  EXPECT_EQ(faults::HitCount("wal.fdatasync"), syncs_after_poison)
      << "a poisoned log must never reach fdatasync again";
  ExpectPresent(*graph, committed, "ok");

  // Restart recovers every acknowledged commit. (The unacknowledged one
  // may or may not replay — its bytes hit the file before the failed
  // sync; either outcome is correct WAL semantics.)
  graph.reset();
  auto recovered = Graph::Recover(DurableOptions(/*fsync=*/true), "");
  ExpectPresent(*recovered, committed, "ok");
  std::vector<vertex_t> fresh = CommitSome(*recovered, 2, "fresh");
  ExpectPresent(*recovered, fresh, "fresh");
}

// Checkpoint failpoints: open/write/sync/rename failures must return -1,
// leave the previous checkpoint authoritative, NOT degrade the engine
// (the WAL still holds everything), and succeed on the next cadence.
TEST_F(FaultMatrixTest, CheckpointFailuresLeavePreviousAuthoritative) {
  const char* points[] = {"ckpt.open=error:ENOSPC", "ckpt.write=error:EIO",
                          "ckpt.sync=error:EIO", "wal.rename=error:EIO"};
  auto graph = std::make_unique<Graph>(DurableOptions());
  std::vector<vertex_t> first = CommitSome(*graph, 4, "first");
  ASSERT_GT(graph->Checkpoint(CheckpointDir()), 0);

  std::vector<vertex_t> second = CommitSome(*graph, 4, "second");
  for (const char* spec : points) {
    ASSERT_TRUE(faults::Configure(spec));
    EXPECT_EQ(graph->Checkpoint(CheckpointDir()), -1) << spec;
    EXPECT_EQ(graph->degraded_status(), Status::kOk)
        << spec << ": a failed checkpoint must not degrade the engine";
    faults::Clear();
  }
  // Next cadence (fault gone) succeeds; recovery sees everything.
  EXPECT_GT(graph->Checkpoint(CheckpointDir()), 0);
  graph.reset();
  auto recovered = Graph::Recover(DurableOptions(), CheckpointDir());
  ExpectPresent(*recovered, first, "first");
  ExpectPresent(*recovered, second, "second");
}

// The WAL-open failpoint: an engine whose log cannot even be created
// starts degraded instead of aborting, and still serves (empty) reads.
TEST_F(FaultMatrixTest, WalOpenFailureStartsDegraded) {
  ASSERT_TRUE(faults::Configure("wal.open=error:EIO"));
  Graph graph(DurableOptions());
  faults::Clear();
  {
    auto txn = graph.BeginTransaction();
    txn.AddVertex("x");
    EXPECT_EQ(txn.Commit(), Status::kIOError);
  }
  auto read = graph.BeginReadOnlyTransaction();
  EXPECT_FALSE(read.GetVertex(0).has_value());
}

// Sharded store: a WAL failure on any shard degrades the whole store,
// reads stay consistent, and Recover restores every acknowledged commit.
TEST_F(FaultMatrixTest, ShardedEnospcDegradesAndRecovers) {
  ShardOptions options;
  options.shards = 2;
  options.dir = (dir_ / "sharded").string();
  options.graph.region_reserve = size_t{1} << 30;
  options.graph.max_vertices = 1 << 16;
  options.graph.fsync_wal = false;
  std::filesystem::create_directories(options.dir);

  auto store = ShardedStore::Recover(options);
  ASSERT_NE(store, nullptr);
  std::vector<vertex_t> committed;
  for (int i = 0; i < 8; ++i) {
    committed.push_back(store->AddNode("n" + std::to_string(i)));
  }

  ASSERT_TRUE(faults::Configure("wal.append=error:ENOSPC"));
  {
    auto txn = store->BeginTxn();
    ASSERT_TRUE(txn->AddNode("doomed").ok());
    EXPECT_EQ(txn->Commit().status(), Status::kResourceExhausted);
  }
  EXPECT_EQ(store->degraded_status(), Status::kResourceExhausted);
  {
    auto txn = store->BeginTxn();
    ASSERT_TRUE(txn->AddNode("rejected").ok());
    EXPECT_EQ(txn->Commit().status(), Status::kResourceExhausted);
  }
  {
    auto read = store->BeginReadTxn();
    for (size_t i = 0; i < committed.size(); ++i) {
      StatusOr<std::string> props = read->GetNode(committed[i]);
      ASSERT_TRUE(props.ok()) << i;
      EXPECT_EQ(*props, "n" + std::to_string(i));
    }
  }
  // A degraded store must refuse to checkpoint over its last good state.
  faults::Clear();
  store.reset();

  auto recovered = ShardedStore::Recover(options);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->degraded_status(), Status::kOk);
  {
    auto read = recovered->BeginReadTxn();
    for (size_t i = 0; i < committed.size(); ++i) {
      StatusOr<std::string> props = read->GetNode(committed[i]);
      ASSERT_TRUE(props.ok()) << i;
      EXPECT_EQ(*props, "n" + std::to_string(i));
    }
  }
  EXPECT_GE(recovered->AddNode("fresh"), 0);
}

// Sharded checkpoint failure: Checkpoint() returns -1, the global
// MANIFEST keeps describing the previous checkpoint, and recovery from
// that state is exact.
TEST_F(FaultMatrixTest, ShardedCheckpointFailureKeepsManifest) {
  ShardOptions options;
  options.shards = 2;
  options.dir = (dir_ / "sharded").string();
  options.graph.region_reserve = size_t{1} << 30;
  options.graph.max_vertices = 1 << 16;
  options.graph.fsync_wal = false;
  std::filesystem::create_directories(options.dir);

  auto store = ShardedStore::Recover(options);
  ASSERT_NE(store, nullptr);
  std::vector<vertex_t> committed;
  for (int i = 0; i < 6; ++i) {
    committed.push_back(store->AddNode("n" + std::to_string(i)));
  }
  ASSERT_GT(store->Checkpoint(), 0);

  committed.push_back(store->AddNode("late"));
  ASSERT_TRUE(faults::Configure("ckpt.sync=error:ENOSPC"));
  EXPECT_EQ(store->Checkpoint(), -1);
  faults::Clear();
  EXPECT_GT(store->Checkpoint(), 0) << "next cadence retries clean";
  store.reset();

  auto recovered = ShardedStore::Recover(options);
  ASSERT_NE(recovered, nullptr);
  auto read = recovered->BeginReadTxn();
  EXPECT_EQ(read->GetNode(committed.back()).value_or(""), "late");
}

#else  // !LIVEGRAPH_FAULTS_ENABLED

TEST(FaultMatrixTest, RequiresFaultBuild) {
  GTEST_SKIP() << "build with -DLIVEGRAPH_FAULTS=ON to run the fault matrix";
}

#endif  // LIVEGRAPH_FAULTS_ENABLED

}  // namespace
}  // namespace livegraph
