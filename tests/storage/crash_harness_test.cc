// Crash-at-failpoint harness: a forked child runs a real workload with a
// `crash` failpoint armed (::_exit(42) — no flushes, no destructors, a
// power cut), reporting each acknowledged commit to a side file as it
// happens. The parent reaps the child, recovers from the same directory,
// and asserts zero acknowledged-commit loss. Gated on the fault build.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "util/fault_injection.h"

namespace livegraph {
namespace {

#if defined(LIVEGRAPH_FAULTS_ENABLED)

class CrashHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::Clear();
    dir_ = std::filesystem::temp_directory_path() /
           ("lg_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faults::Clear();
    std::filesystem::remove_all(dir_);
  }

  GraphOptions DurableOptions(bool fsync) {
    GraphOptions options;
    options.region_reserve = size_t{1} << 30;
    options.max_vertices = 1 << 16;
    options.enable_compaction = false;
    options.wal_path = (dir_ / "wal.log").string();
    options.fsync_wal = fsync;
    return options;
  }

  std::string ReportPath() { return (dir_ / "acked.txt").string(); }
  std::string CheckpointDir() { return (dir_ / "ckpt").string(); }

  /// Child body: commit vertices one by one, appending "<id> <i>" to the
  /// report file after each acknowledged commit. Never returns normally
  /// when the armed crash point fires. Exit codes: 0 = workload finished
  /// without crashing (the caller decides if that's a failure), 3 = bad
  /// spec, 4 = unexpected commit failure.
  [[noreturn]] void ChildWorkload(const char* spec, bool fsync,
                                  bool checkpoint_at_end) {
    std::string error;
    if (!faults::Configure(spec, &error)) ::_exit(3);
    Graph graph(DurableOptions(fsync));
    std::FILE* report = std::fopen(ReportPath().c_str(), "a");
    if (report == nullptr) ::_exit(4);
    for (int i = 0; i < 32; ++i) {
      auto txn = graph.BeginTransaction();
      vertex_t v = txn.AddVertex("crash" + std::to_string(i));
      if (txn.Commit() != Status::kOk) ::_exit(4);
      std::fprintf(report, "%lld %d\n", static_cast<long long>(v), i);
      std::fflush(report);
    }
    if (checkpoint_at_end) (void)graph.Checkpoint(CheckpointDir());
    std::fclose(report);
    ::_exit(0);
  }

  /// Forks the child workload and returns its exit status (waitpid).
  int RunChild(const char* spec, bool fsync, bool checkpoint_at_end) {
    pid_t pid = ::fork();
    if (pid == 0) ChildWorkload(spec, fsync, checkpoint_at_end);
    EXPECT_GT(pid, 0);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return status;
  }

  std::filesystem::path dir_;

  /// Every line the child acknowledged must be present after recovery.
  void ExpectAckedCommitsSurvive(Graph& recovered) {
    std::ifstream report(ReportPath());
    ASSERT_TRUE(report.good()) << "child never acknowledged anything";
    auto read = recovered.BeginReadOnlyTransaction();
    long long v;
    int i;
    int acked = 0;
    while (report >> v >> i) {
      auto props = read.GetVertex(static_cast<vertex_t>(v));
      ASSERT_TRUE(props.has_value()) << "acked commit " << i << " lost";
      EXPECT_EQ(*props, "crash" + std::to_string(i));
      ++acked;
    }
    EXPECT_GT(acked, 0) << "harness must observe acknowledged commits";
  }
};

TEST_F(CrashHarnessTest, CrashAtFdatasyncLosesNoAckedCommit) {
  int status = RunChild("wal.fdatasync=crash@after=5", /*fsync=*/true,
                        /*checkpoint_at_end=*/false);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "the crash point must have fired";
  auto recovered = Graph::Recover(DurableOptions(/*fsync=*/true), "");
  ExpectAckedCommitsSurvive(*recovered);
  // The recovered engine is healthy and writes again.
  auto txn = recovered->BeginTransaction();
  txn.AddVertex("after");
  EXPECT_EQ(txn.Commit(), Status::kOk);
}

TEST_F(CrashHarnessTest, CrashAtAppendLosesNoAckedCommit) {
  int status = RunChild("wal.append=crash@after=9", /*fsync=*/false,
                        /*checkpoint_at_end=*/false);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42);
  auto recovered = Graph::Recover(DurableOptions(/*fsync=*/false), "");
  ExpectAckedCommitsSurvive(*recovered);
}

TEST_F(CrashHarnessTest, CrashDuringCheckpointRecoversFromWal) {
  // The child finishes its workload, then dies inside Checkpoint(): only
  // .tmp checkpoint files exist, the WAL holds everything, and recovery
  // (pointed at the half-written checkpoint dir) replays it all.
  int status = RunChild("ckpt.sync=crash", /*fsync=*/false,
                        /*checkpoint_at_end=*/true);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42);
  auto recovered = Graph::Recover(DurableOptions(/*fsync=*/false),
                                  CheckpointDir());
  ExpectAckedCommitsSurvive(*recovered);
}

#else  // !LIVEGRAPH_FAULTS_ENABLED

TEST(CrashHarnessTest, RequiresFaultBuild) {
  GTEST_SKIP() << "build with -DLIVEGRAPH_FAULTS=ON to run crash tests";
}

#endif  // LIVEGRAPH_FAULTS_ENABLED

}  // namespace
}  // namespace livegraph
