#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "analytics/conncomp.h"
#include "analytics/etl.h"
#include "analytics/pagerank.h"
#include "analytics/static_engine.h"
#include "core/graph.h"
#include "core/transaction.h"
#include "workload/kronecker.h"

namespace livegraph {
namespace {

GraphOptions SmallOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 31;
  options.max_vertices = 1 << 20;
  return options;
}

/// Loads edges into a fresh graph under label 0.
std::unique_ptr<Graph> LoadGraph(
    vertex_t n, const std::vector<std::pair<vertex_t, vertex_t>>& edges) {
  auto graph = std::make_unique<Graph>(SmallOptions());
  auto txn = graph->BeginTransaction();
  for (vertex_t v = 0; v < n; ++v) txn.AddVertex();
  for (const auto& [src, dst] : edges) txn.AddEdge(src, 0, dst);
  EXPECT_EQ(txn.Commit(), Status::kOk);
  return graph;
}

TEST(Etl, SnapshotToCsrPreservesTopology) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {3, 0}};
  auto graph = LoadGraph(4, edges);
  auto snapshot = graph->BeginReadOnlyTransaction();
  Csr csr = ExportToCsr(snapshot, 0, /*threads=*/2);
  EXPECT_EQ(csr.vertex_count(), 4);
  EXPECT_EQ(csr.edge_count(), 4);
  EXPECT_EQ(csr.Degree(0), 2);
  EXPECT_EQ(csr.Degree(3), 1);
  std::multiset<vertex_t> n0(csr.Neighbors(0).begin(), csr.Neighbors(0).end());
  EXPECT_EQ(n0, (std::multiset<vertex_t>{1, 2}));
}

TEST(PageRank, UniformOnSymmetricCycle) {
  // Directed cycle: every vertex has equal rank = 1/n.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  constexpr vertex_t n = 10;
  for (vertex_t v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  auto graph = LoadGraph(n, edges);
  auto snapshot = graph->BeginReadOnlyTransaction();
  PageRankOptions options;
  options.threads = 4;
  auto ranks = PageRankOnSnapshot(snapshot, 0, options);
  for (double r : ranks) EXPECT_NEAR(r, 0.1, 1e-9);
  double sum = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, HubCollectsRank) {
  // Star: everyone points at vertex 0 => 0 has the highest rank.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 1; v < 20; ++v) edges.push_back({v, 0});
  auto graph = LoadGraph(20, edges);
  auto snapshot = graph->BeginReadOnlyTransaction();
  PageRankOptions options;
  options.threads = 4;
  auto ranks = PageRankOnSnapshot(snapshot, 0, options);
  for (size_t v = 1; v < 20; ++v) EXPECT_GT(ranks[0], ranks[v]);
}

TEST(PageRank, SnapshotMatchesCsrEngine) {
  KroneckerOptions kron;
  kron.scale = 10;
  auto edges = GenerateKronecker(kron);
  auto graph = LoadGraph(vertex_t{1} << 10, edges);
  auto snapshot = graph->BeginReadOnlyTransaction();
  PageRankOptions options;
  options.threads = 4;
  auto in_situ = PageRankOnSnapshot(snapshot, 0, options);
  // Note: upsert semantics dedup multi-edges, so export the CSR from the
  // snapshot itself (the engines must agree on the same graph).
  StaticGraphEngine engine(ExportToCsr(snapshot, 0, 4));
  auto dedicated = engine.PageRank(options);
  ASSERT_EQ(in_situ.size(), dedicated.size());
  for (size_t v = 0; v < in_situ.size(); ++v) {
    ASSERT_NEAR(in_situ[v], dedicated[v], 1e-9) << "vertex " << v;
  }
}

TEST(ConnComp, IdentifiesComponents) {
  // Two triangles + an isolated vertex.
  std::vector<std::pair<vertex_t, vertex_t>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};
  auto graph = LoadGraph(7, edges);
  auto snapshot = graph->BeginReadOnlyTransaction();
  auto comp = ConnCompOnSnapshot(snapshot, 0, /*threads=*/4);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_NE(comp[6], comp[3]);
}

TEST(ConnComp, SnapshotMatchesCsrEngine) {
  KroneckerOptions kron;
  kron.scale = 9;
  auto edges = GenerateKronecker(kron);
  auto graph = LoadGraph(vertex_t{1} << 9, edges);
  auto snapshot = graph->BeginReadOnlyTransaction();
  auto in_situ = ConnCompOnSnapshot(snapshot, 0, 4);
  StaticGraphEngine engine(ExportToCsr(snapshot, 0, 4));
  auto dedicated = engine.ConnComp(4);
  // Same partition: components must induce identical equivalence classes.
  std::map<vertex_t, vertex_t> mapping;
  ASSERT_EQ(in_situ.size(), dedicated.size());
  for (size_t v = 0; v < in_situ.size(); ++v) {
    auto [it, inserted] = mapping.try_emplace(in_situ[v], dedicated[v]);
    EXPECT_EQ(it->second, dedicated[v]) << "partition mismatch at " << v;
  }
}

TEST(Analytics, RunOnFreshSnapshotSeesLatestCommits) {
  // The real-time property: analytics on a new snapshot include edges
  // committed a moment ago, with zero ETL.
  auto graph = LoadGraph(4, {{0, 1}});
  {
    auto snapshot = graph->BeginReadOnlyTransaction();
    auto comp = ConnCompOnSnapshot(snapshot, 0, 2);
    EXPECT_NE(comp[2], comp[0]);
  }
  {
    auto txn = graph->BeginTransaction();
    ASSERT_EQ(txn.AddEdge(1, 0, 2), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  auto snapshot = graph->BeginReadOnlyTransaction();
  auto comp = ConnCompOnSnapshot(snapshot, 0, 2);
  EXPECT_EQ(comp[2], comp[0]) << "fresh edge must be part of the analysis";
}

}  // namespace
}  // namespace livegraph
