#include <gtest/gtest.h>

#include <set>

#include "baselines/btree_store.h"
#include "baselines/livegraph_store.h"
#include "snb/datagen.h"
#include "snb/queries.h"
#include "snb/snb_driver.h"

namespace livegraph::snb {
namespace {

GraphOptions SmallGraphOptions() {
  GraphOptions options;
  options.region_reserve = size_t{1} << 31;
  options.max_vertices = 1 << 20;
  return options;
}

DatagenOptions TinySf() {
  DatagenOptions options;
  options.scale_factor = 0.1;  // 100 persons
  return options;
}

TEST(SnbSchema, EncodeDecodeRoundTrip) {
  Person person;
  person.first_name = 42;
  person.last_name = 99;
  person.birthday = 123456;
  person.creation_date = 777;
  std::string bytes = Encode(person);
  EXPECT_EQ(KindOf(bytes), EntityKind::kPerson);
  Person decoded;
  ASSERT_TRUE(Decode(bytes, &decoded));
  EXPECT_EQ(decoded.first_name, 42);
  EXPECT_EQ(decoded.last_name, 99);
  EXPECT_EQ(decoded.creation_date, 777);
  Message bad;
  EXPECT_FALSE(Decode(bytes, &bad)) << "Message payload is larger than Person";
  EXPECT_FALSE(Decode(std::string_view("x"), &decoded));
}

TEST(SnbDatagen, GeneratesConsistentSocialNetwork) {
  LiveGraphStore store(SmallGraphOptions());
  SnbDataset data = GenerateSnb(&store, TinySf());
  EXPECT_EQ(data.persons.size(), 100u);
  EXPECT_GT(data.messages.size(), 100u);
  EXPECT_GT(data.forums.size(), 0u);

  auto view = store.BeginReadTxn();
  // Knows edges are mutual.
  for (size_t i = 0; i < 20; ++i) {
    vertex_t p = data.persons[i];
    for (EdgeCursor c = view->ScanLinks(p, kKnows); c.Valid(); c.Next()) {
      EXPECT_TRUE(view->GetLink(c.dst(), kKnows, p).ok())
          << "knows must be mutual: " << p << " <-> " << c.dst();
    }
  }
  // Every message has a creator, and the reverse edge exists.
  for (size_t i = 0; i < data.messages.size(); i += 37) {
    vertex_t m = data.messages[i];
    size_t creators = 0;
    for (EdgeCursor c = view->ScanLinks(m, kHasCreator); c.Valid();
         c.Next()) {
      EXPECT_TRUE(view->GetLink(c.dst(), kCreated, m).ok());
      creators++;
    }
    EXPECT_EQ(creators, 1u) << "message " << m;
  }
  // Comments have parents; replies mirror replyOf.
  for (size_t i = 0; i < data.messages.size(); i += 11) {
    vertex_t m = data.messages[i];
    StatusOr<std::string> bytes = view->GetNode(m);
    ASSERT_TRUE(bytes.ok());
    if (KindOf(*bytes) == EntityKind::kComment) {
      size_t parents = 0;
      for (EdgeCursor c = view->ScanLinks(m, kReplyOf); c.Valid(); c.Next()) {
        EXPECT_TRUE(view->GetLink(c.dst(), kReplies, m).ok());
        parents++;
      }
      EXPECT_EQ(parents, 1u);
    }
  }
}

TEST(SnbQueries, ShortReadsOnHandBuiltGraph) {
  LiveGraphStore store(SmallGraphOptions());
  // alice -knows- bob -knows- carol; bob wrote post p1 then comment c1 on it.
  Person alice_p{}, bob_p{}, carol_p{};
  alice_p.first_name = 1;
  bob_p.first_name = 2;
  carol_p.first_name = 3;
  alice_p.creation_date = bob_p.creation_date = carol_p.creation_date = 1;
  vertex_t alice = store.AddNode(Encode(alice_p));
  vertex_t bob = store.AddNode(Encode(bob_p));
  vertex_t carol = store.AddNode(Encode(carol_p));
  UpdateAddFriendship(&store, alice, bob, 10);
  UpdateAddFriendship(&store, bob, carol, 20);
  Forum forum_v{};
  forum_v.moderator = bob;
  vertex_t forum = store.AddNode(Encode(forum_v));
  vertex_t p1 = UpdateAddPost(&store, bob, forum, 100, 50);
  vertex_t c1 = UpdateAddComment(&store, carol, p1, 200, 10);

  auto view = store.BeginReadTxn();
  Person profile;
  ASSERT_TRUE(ShortPersonProfile(*view, bob, &profile));
  EXPECT_EQ(profile.first_name, 2);
  EXPECT_FALSE(ShortPersonProfile(*view, p1, &profile))
      << "messages are not persons";

  auto friends = ShortFriends(*view, bob);
  ASSERT_EQ(friends.size(), 2u);
  std::set<vertex_t> friend_ids{friends[0].person, friends[1].person};
  EXPECT_EQ(friend_ids, (std::set<vertex_t>{alice, carol}));

  auto recent = ShortRecentMessages(*view, bob);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].message, p1);

  auto replies = ShortReplies(*view, p1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].comment, c1);
  EXPECT_EQ(replies[0].author, carol);
}

TEST(SnbQueries, ComplexReadsOnHandBuiltGraph) {
  LiveGraphStore store(SmallGraphOptions());
  // Chain a-b-c-d-e: distances from a are 1,2,3,4.
  std::vector<vertex_t> chain;
  for (int i = 0; i < 5; ++i) {
    Person person{};
    person.first_name = 7;  // all share the target name
    vertex_t v = store.AddNode(Encode(person));
    chain.push_back(v);
    if (i > 0) UpdateAddFriendship(&store, chain[size_t(i) - 1], v, i);
  }
  auto view = store.BeginReadTxn();
  // IC13: shortest paths along the chain.
  EXPECT_EQ(ComplexShortestPath(*view, chain[0], chain[0]), 0);
  EXPECT_EQ(ComplexShortestPath(*view, chain[0], chain[1]), 1);
  EXPECT_EQ(ComplexShortestPath(*view, chain[0], chain[4]), 4);
  EXPECT_EQ(ComplexShortestPath(*view, chain[4], chain[0]), 4);
  // Disconnected person.
  Person loner_p{};
  vertex_t loner = store.AddNode(Encode(loner_p));
  auto fresh = store.BeginReadTxn();
  EXPECT_EQ(ComplexShortestPath(*fresh, chain[0], loner), -1);

  // IC1: 3-hop name search from chain[0] finds b,c,d (not e: 4 hops).
  auto named = ComplexFriendsByName(*fresh, chain[0], 7);
  std::set<vertex_t> found;
  for (const auto& np : named) {
    EXPECT_LE(np.distance, 3);
    found.insert(np.person);
  }
  EXPECT_EQ(found, (std::set<vertex_t>{chain[1], chain[2], chain[3]}));

  // IC2: messages by friends of b (= a and c), newest first.
  Forum forum_v{};
  vertex_t forum = store.AddNode(Encode(forum_v));
  vertex_t m1 = UpdateAddPost(&store, chain[0], forum, 1000, 5);
  vertex_t m2 = UpdateAddPost(&store, chain[2], forum, 2000, 5);
  UpdateAddPost(&store, chain[4], forum, 3000, 5);  // not a friend of b
  auto view2 = store.BeginReadTxn();
  auto messages = ComplexFriendMessages(*view2, chain[1], INT64_MAX);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].message, m2);
  EXPECT_EQ(messages[1].message, m1);
  // Date filter excludes m2.
  auto older = ComplexFriendMessages(*view2, chain[1], 1500);
  ASSERT_EQ(older.size(), 1u);
  EXPECT_EQ(older[0].message, m1);

  // IC9: friends-of-friends of a include c's posts.
  auto fof = ComplexFofMessages(*view2, chain[0], INT64_MAX);
  std::set<vertex_t> fof_messages;
  for (const auto& m : fof) fof_messages.insert(m.message);
  EXPECT_TRUE(fof_messages.count(m1) == 0)  // a's own post excluded? No:
      << "IC9 includes friends (b) and fofs (c): a's own posts excluded";
  EXPECT_TRUE(fof_messages.count(m2) == 1);
}

class SnbDriverTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SnbDriverTest, MixRunsToCompletion) {
  std::unique_ptr<Store> store;
  if (std::string(GetParam()) == "LiveGraph") {
    store = std::make_unique<LiveGraphStore>(SmallGraphOptions());
  } else {
    store = std::make_unique<BTreeStore>();
  }
  SnbDataset data = GenerateSnb(store.get(), TinySf());
  SnbRunOptions run;
  run.clients = 4;
  run.ops_per_client = 200;
  auto overall = RunSnb(store.get(), &data, run);
  EXPECT_EQ(overall.operations, 800u);
  EXPECT_GT(overall.per_class.size(), 5u);
  run.mode = SnbMode::kComplexOnly;
  auto complex = RunSnb(store.get(), &data, run);
  for (const auto& [name, histogram] : complex.per_class) {
    EXPECT_EQ(name.substr(0, 2), "IC") << "complex-only ran " << name;
    EXPECT_GT(histogram.count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Stores, SnbDriverTest,
                         ::testing::Values("LiveGraph", "BTree"));

}  // namespace
}  // namespace livegraph::snb
